//! The streaming pipeline: channels, the sharded work-stealing
//! scheduler, the long-lived worker pool, and strict per-channel
//! in-order completion delivery.
//!
//! # Sharded scheduling
//!
//! There is no global submission queue. Each worker owns a bounded
//! local queue (its *shard*); a channel is assigned a **home worker**
//! at build time (round-robin over registration order) and every
//! symbol submitted on it lands in that worker's shard, so a channel's
//! engine scratch stays hot in one worker's cache. A worker whose
//! shard runs dry **steals** the older half of another worker's queue
//! (randomized victim order, only from queues holding at least two
//! jobs), so a flooded channel cannot starve the rest of the pipeline.
//! Backpressure is a pipeline-wide lock-free budget of
//! [`queue_depth`](StreamBuilder::queue_depth) accepted-but-unclaimed
//! symbols: [`try_submit`](StreamPipeline::try_submit) refuses with
//! [`SubmitError::QueueFull`] when it is exhausted,
//! [`submit`](StreamPipeline::submit) blocks on a low-watermark wake.
//!
//! Completions are sharded too: each worker parks finished symbols in
//! its own outbox, and the delivery side drains every outbox into
//! per-channel seq-keyed reorder rings under a delivery-only lock no
//! worker ever takes. On the steady-state hot path no lock is acquired
//! by more than one worker: submission touches one shard mutex (the
//! home worker's), the transform holds nothing, and parking touches
//! one outbox mutex (the worker's own). The private `shard` module
//! documents the locking discipline.
//!
//! Engines are **never** shared: each worker constructs its own
//! backend per channel from the registry factory (the same idiom as
//! [`BatchExecutor::execute_threaded_into`](afft_planner::BatchExecutor::execute_threaded_into)),
//! then warms its scratch once, so steady-state traffic does zero heap
//! work per symbol.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use afft_core::{Direction, FftError};
use afft_num::C64;
use afft_obs::{Recorder, Stage};
use afft_planner::{Plan, RegistryFactory};

use crate::delivery::{ChanRing, CompletionBuf, DeliveryState};
use crate::shard::{Budget, Gate, Job, Shard};
use crate::stats::{ChannelObs, ChannelStats, StreamObs, StreamStats};
use crate::worker::{worker_loop, Front, WorkerCounters};

/// How many jobs a worker claims (and how many completions it parks)
/// per lock acquisition. Bounds added latency under low load — a worker
/// only takes what is already queued — while amortising the mutex and
/// condvar traffic under sustained load, where per-symbol transform
/// time is small enough for lock contention to dominate. Also the cap
/// on how many jobs one steal takes.
pub const WORKER_BATCH: usize = 8;

/// What a channel does to each submitted payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelOp {
    /// The raw transform:
    /// [`execute_into`](afft_core::engine::FftEngine::execute_into) in
    /// the given direction. Input and output are both `N` points.
    Transform(Direction),
    /// OFDM modulation
    /// ([`Ofdm::modulate_into`](afft_core::ofdm::Ofdm::modulate_into)):
    /// `N` subcarriers in, `N + cp` time-domain samples out (IFFT,
    /// `1/N` normalised, cyclic prefix prepended).
    Modulate {
        /// Cyclic-prefix length in samples (must be `< N`).
        cp: usize,
    },
    /// OFDM demodulation
    /// ([`Ofdm::demodulate_into`](afft_core::ofdm::Ofdm::demodulate_into)):
    /// `N + cp` received samples in, `N` subcarrier bins out (prefix
    /// stripped, forward FFT).
    Demodulate {
        /// Cyclic-prefix length in samples (must be `< N`).
        cp: usize,
    },
}

/// One streaming channel: a planned `(n, engine, operation)` triple.
///
/// Channels are registered on the [`StreamBuilder`]; every worker builds
/// a private backend (and, for the OFDM ops, a private
/// [`Ofdm`](afft_core::ofdm::Ofdm) front-end) per channel. The channel
/// is assigned a home worker — round-robin in registration order — and
/// its symbols run there unless stolen (see
/// [`StreamPipeline::home_worker`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelSpec {
    /// Transform size (number of subcarriers for the OFDM ops).
    pub n: usize,
    /// Engine name to take from the registry
    /// ([`FftEngine::name`](afft_core::engine::FftEngine::name)).
    pub engine: String,
    /// What each submitted payload goes through.
    pub op: ChannelOp,
}

impl ChannelSpec {
    /// A raw-transform channel on a named engine.
    pub fn transform(n: usize, engine: &str, dir: Direction) -> Self {
        ChannelSpec { n, engine: engine.to_string(), op: ChannelOp::Transform(dir) }
    }

    /// A channel on the winner of a ranked [`Plan`] — how wisdom reaches
    /// the streaming layer.
    pub fn from_plan(plan: &Plan, op: ChannelOp) -> Self {
        ChannelSpec { n: plan.n, engine: plan.best().name.clone(), op }
    }

    /// Required payload (input buffer) length for this channel.
    pub fn input_len(&self) -> usize {
        match self.op {
            ChannelOp::Transform(_) | ChannelOp::Modulate { .. } => self.n,
            ChannelOp::Demodulate { cp } => self.n + cp,
        }
    }

    /// Required result (output buffer) length for this channel.
    pub fn output_len(&self) -> usize {
        match self.op {
            ChannelOp::Transform(_) | ChannelOp::Demodulate { .. } => self.n,
            ChannelOp::Modulate { cp } => self.n + cp,
        }
    }
}

/// Distinguishes pipelines so a [`ChannelId`] can prove which one it
/// belongs to — an id from pipeline A used on pipeline B must fail
/// loudly, not silently address B's same-index channel.
static NEXT_PIPELINE_STAMP: AtomicU64 = AtomicU64::new(0);

/// Opaque handle to a channel registered on a [`StreamBuilder`].
///
/// The handle remembers which pipeline it was issued by; using it on
/// any other pipeline panics instead of silently selecting whatever
/// channel shares its index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelId {
    pub(crate) stamp: u64,
    pub(crate) index: usize,
}

impl ChannelId {
    /// The channel's index in registration order (stable for the
    /// pipeline's lifetime; also the index into
    /// [`StreamStats::per_channel`]).
    pub fn index(self) -> usize {
        self.index
    }
}

/// One finished symbol, delivered in per-channel submission order.
///
/// Both payload buffers come back to the caller, so a steady-state loop
/// recycles them into the next [`StreamPipeline::submit`] and allocates
/// nothing per symbol.
#[derive(Debug)]
pub struct Completion {
    /// The channel the symbol was submitted on.
    pub channel: ChannelId,
    /// The sequence number [`StreamPipeline::submit`] returned.
    pub seq: u64,
    /// The submitted input buffer, unchanged.
    pub input: Vec<C64>,
    /// The result buffer. On error its contents are unspecified.
    pub output: Vec<C64>,
    /// Cycle count of this transform, on cycle-accurate backends.
    pub cycles: Option<u64>,
    /// The backend error, if the transform failed. Errors are delivered
    /// in order like successes — a failed symbol never reorders the
    /// stream.
    pub error: Option<FftError>,
}

/// Why a submission was refused. Every variant hands the payload
/// buffers back — refusing a symbol never costs the caller its
/// allocations.
#[derive(Debug)]
pub enum SubmitError {
    /// The pipeline-wide submission budget is at capacity (only
    /// [`StreamPipeline::try_submit`] returns this; `submit` blocks
    /// instead).
    QueueFull {
        /// The refused input buffer, returned to the caller.
        input: Vec<C64>,
        /// The refused output buffer, returned to the caller.
        output: Vec<C64>,
    },
    /// The pipeline no longer accepts work
    /// ([`StreamPipeline::close`] / [`StreamPipeline::shutdown`]).
    Closed {
        /// The refused input buffer, returned to the caller.
        input: Vec<C64>,
        /// The refused output buffer, returned to the caller.
        output: Vec<C64>,
    },
    /// A buffer does not match the channel's shape
    /// ([`ChannelSpec::input_len`] / [`ChannelSpec::output_len`]).
    Shape {
        /// The underlying length mismatch.
        error: FftError,
        /// The refused input buffer, returned to the caller.
        input: Vec<C64>,
        /// The refused output buffer, returned to the caller.
        output: Vec<C64>,
    },
    /// A worker panicked and poisoned the pipeline; it will never accept
    /// or finish work again. Only the checked forms
    /// ([`StreamPipeline::try_submit`] /
    /// [`StreamPipeline::submit_checked`]) return this — the panicking
    /// [`StreamPipeline::submit`] wrapper re-raises it as a panic.
    Poisoned {
        /// The refused input buffer, returned to the caller.
        input: Vec<C64>,
        /// The refused output buffer, returned to the caller.
        output: Vec<C64>,
    },
}

impl SubmitError {
    /// Recovers the payload buffers from any refusal, `(input, output)`.
    pub fn into_buffers(self) -> (Vec<C64>, Vec<C64>) {
        match self {
            SubmitError::QueueFull { input, output }
            | SubmitError::Closed { input, output }
            | SubmitError::Shape { input, output, .. }
            | SubmitError::Poisoned { input, output } => (input, output),
        }
    }
}

impl core::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SubmitError::QueueFull { .. } => write!(f, "submission queue is full"),
            SubmitError::Closed { .. } => write!(f, "pipeline is closed to new submissions"),
            SubmitError::Shape { error, .. } => write!(f, "payload rejected: {error}"),
            SubmitError::Poisoned { .. } => {
                write!(f, "a stream worker panicked; the pipeline is poisoned")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a checked receive ([`StreamPipeline::recv_checked`] /
/// [`StreamPipeline::recv_timeout`]) returned without a verdict on the
/// channel's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// The [`recv_timeout`](StreamPipeline::recv_timeout) deadline
    /// elapsed with the channel still owing a completion. The symbol is
    /// not lost — it stays queued/in flight and a later receive can
    /// still collect it.
    Timeout,
    /// A worker panicked and poisoned the pipeline. Symbols the worker
    /// had claimed are lost; waiting for them would hang forever.
    /// Completions that were already parked are still delivered before
    /// this is returned.
    Poisoned,
}

impl core::fmt::Display for RecvError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RecvError::Timeout => write!(f, "timed out waiting for a completion"),
            RecvError::Poisoned => {
                write!(f, "a stream worker panicked; the pipeline is poisoned")
            }
        }
    }
}

impl std::error::Error for RecvError {}

/// Configures and spawns a [`StreamPipeline`]. Obtained from
/// [`StreamPipeline::builder`].
#[derive(Debug)]
pub struct StreamBuilder {
    factory: RegistryFactory,
    specs: Vec<ChannelSpec>,
    workers: usize,
    queue_depth: usize,
    observability: Option<bool>,
    sample_every: u64,
    stamp: u64,
}

/// Default stage-timing sample rate: one symbol in 8 per channel. At
/// sub-microsecond symbol costs the clock reads are the dominant
/// metrics cost (three ~30 ns reads per symbol would be ~10% of a
/// 256-point transform), so timing every symbol is priced out of the
/// default; 1-in-8 keeps thousands of samples per second at streaming
/// rates for well under 1% overhead.
pub const DEFAULT_SAMPLE_EVERY: u64 = 8;

/// Resolves the worker-pool size: the `AFFT_STREAM_WORKERS` environment
/// variable (clamped to at least 1) overrides the builder's setting, so
/// CI can force a multi-worker pool — and exercise the stealing and
/// cross-shard paths — even on a 1-core runner.
fn resolve_workers(configured: usize) -> usize {
    std::env::var("AFFT_STREAM_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map_or(configured, |w| w.max(1))
}

impl StreamBuilder {
    /// Sets the worker-pool size (clamped to at least 1; default 4).
    /// The `AFFT_STREAM_WORKERS` environment variable, when set to a
    /// number, overrides this — CI uses it to force the sharded paths
    /// onto small runners.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Explicitly enables or disables metrics collection (per-channel
    /// latency histograms with stage breakdowns, surfaced on
    /// [`StreamStats::obs`]). The default — when this is never called —
    /// follows the process-wide `AFFT_OBS` switch
    /// ([`afft_obs::enabled`]), which itself defaults to **on**.
    #[must_use]
    pub fn observability(mut self, on: bool) -> Self {
        self.observability = Some(on);
        self
    }

    /// Sets the stage-timing sample rate: one symbol in `every` (per
    /// channel, by sequence number, so sampling is deterministic) gets
    /// the full queue-wait / transform / reorder-park / deliver clock
    /// stamps. Clamped to at least 1; `1` times every symbol. The
    /// default is [`DEFAULT_SAMPLE_EVERY`] — clock reads, not the
    /// lock-free histogram writes, are the dominant metrics cost, and
    /// sampling is what keeps it under the stream bench's 5% budget.
    #[must_use]
    pub fn sample_every(mut self, every: u64) -> Self {
        self.sample_every = every.max(1);
        self
    }

    /// Sets the pipeline-wide submission budget (clamped to at least
    /// 1; default 64): how many accepted symbols may sit in shard
    /// queues awaiting a worker. A full budget is the backpressure
    /// signal: [`StreamPipeline::try_submit`] refuses,
    /// [`StreamPipeline::submit`] blocks.
    #[must_use]
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Registers a channel and returns its handle.
    pub fn channel(&mut self, spec: ChannelSpec) -> ChannelId {
        self.specs.push(spec);
        ChannelId { stamp: self.stamp, index: self.specs.len() - 1 }
    }

    /// Validates every channel (engine present in the factory's
    /// registry, supported size, cyclic prefix shorter than the symbol)
    /// and spawns the worker pool. Each worker builds its private
    /// engines and warms their scratch before serving traffic. Channels
    /// are homed round-robin over the workers in registration order.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidDecomposition`] for a pipeline with no
    /// channels, [`FftError::Backend`] for an engine name the registry
    /// does not offer, and any construction error the backends report.
    pub fn build(self) -> Result<StreamPipeline, FftError> {
        if self.specs.is_empty() {
            return Err(FftError::InvalidDecomposition {
                reason: "a stream pipeline needs at least one channel".into(),
            });
        }
        // Fail on the builder thread, not inside a worker: construct
        // (and drop) one front-end per channel now.
        for spec in &self.specs {
            Front::build(spec, self.factory)?;
        }

        let workers = resolve_workers(self.workers);

        // Metrics: one series per (channel, stage), one recorder shard
        // per worker plus one for the delivering caller. Resolved here
        // — not per record — so flipping `AFFT_OBS` mid-process never
        // tears a pipeline's instrumentation.
        let observability = self.observability.unwrap_or_else(afft_obs::enabled);
        let obs = observability.then(|| {
            let series = (0..self.specs.len())
                .flat_map(|i| Stage::ALL.iter().map(move |stage| format!("ch{i}/{stage}")))
                .collect();
            PipelineObs {
                recorder: Recorder::new(workers + 1, series),
                caller_shard: workers,
                sample_every: self.sample_every,
            }
        });

        let specs = Arc::new(self.specs);
        let shared = Arc::new(Shared {
            shards: (0..workers).map(|_| Shard::new(self.queue_depth)).collect(),
            budget: Budget::new(self.queue_depth),
            space: Gate::new(),
            done: Gate::new(),
            delivery: Mutex::new(DeliveryState {
                rings: specs.iter().map(|_| ChanRing::default()).collect(),
            }),
            cbufs: (0..workers).map(|_| CompletionBuf::new()).collect(),
            chans: specs
                .iter()
                .enumerate()
                .map(|(i, _)| ChanShared {
                    next_seq: AtomicU64::new(0),
                    delivered: AtomicU64::new(0),
                    completed: AtomicU64::new(0),
                    home: i % workers,
                })
                .collect(),
            wstats: (0..workers).map(|_| WorkerCounters::new()).collect(),
            closed: AtomicBool::new(false),
            worker_panicked: AtomicBool::new(false),
            poke_cursor: AtomicUsize::new(0),
            obs,
            epoch: Instant::now(),
        });

        let mut handles = Vec::with_capacity(workers);
        for idx in 0..workers {
            let shared = Arc::clone(&shared);
            let specs = Arc::clone(&specs);
            let factory = self.factory;
            handles.push(std::thread::spawn(move || worker_loop(idx, &shared, &specs, factory)));
        }

        Ok(StreamPipeline {
            shared,
            specs,
            handles,
            queue_depth: self.queue_depth,
            stamp: self.stamp,
            started: Instant::now(),
        })
    }
}

/// The persistent streaming executor. See the [crate docs](crate) for
/// the lifecycle and a worked example.
#[derive(Debug)]
pub struct StreamPipeline {
    shared: Arc<Shared>,
    specs: Arc<Vec<ChannelSpec>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    queue_depth: usize,
    stamp: u64,
    started: Instant,
}

impl StreamPipeline {
    /// Starts configuring a pipeline over a registry factory
    /// ([`EngineRegistry::standard`](afft_core::engine::EngineRegistry::standard)
    /// for the software backends, `registry_with_asip` to let the
    /// cycle-accurate ISS serve channels).
    pub fn builder(factory: RegistryFactory) -> StreamBuilder {
        StreamBuilder {
            factory,
            specs: Vec::new(),
            workers: 4,
            queue_depth: 64,
            observability: None,
            sample_every: DEFAULT_SAMPLE_EVERY,
            stamp: NEXT_PIPELINE_STAMP.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Whether this pipeline collects latency metrics (see
    /// [`StreamBuilder::observability`]).
    pub fn observability_enabled(&self) -> bool {
        self.shared.obs.is_some()
    }

    /// The spec a channel was registered with.
    ///
    /// # Panics
    ///
    /// Panics if `channel` did not come from this pipeline's builder.
    pub fn spec(&self, channel: ChannelId) -> &ChannelSpec {
        &self.specs[self.chan(channel)]
    }

    /// The worker a channel is homed on: its symbols are queued (and,
    /// absent stealing, transformed) there. Assigned round-robin over
    /// the pool in registration order.
    ///
    /// # Panics
    ///
    /// Panics if `channel` did not come from this pipeline's builder.
    pub fn home_worker(&self, channel: ChannelId) -> usize {
        self.shared.chans[self.chan(channel)].home
    }

    /// Resolves a [`ChannelId`] to its index, enforcing provenance: an
    /// id minted by a different pipeline must fail loudly even when its
    /// index happens to be in range here.
    fn chan(&self, channel: ChannelId) -> usize {
        assert_eq!(channel.stamp, self.stamp, "ChannelId was issued by a different StreamPipeline");
        channel.index
    }

    /// Number of registered channels.
    pub fn channel_count(&self) -> usize {
        self.specs.len()
    }

    /// Number of pool workers.
    pub fn worker_count(&self) -> usize {
        self.handles.len().max(1)
    }

    /// Capacity of the pipeline-wide submission budget.
    pub fn queue_capacity(&self) -> usize {
        self.queue_depth
    }

    /// Non-blocking submission: enqueues the payload on the channel's
    /// home shard or refuses with [`SubmitError::QueueFull`] — the
    /// backpressure signal for callers that would rather shed or buffer
    /// load than stall. Refusal hands both buffers back and loses no
    /// previously accepted work.
    ///
    /// Returns the symbol's per-channel sequence number; its
    /// [`Completion`] is delivered in exactly this order.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`], [`SubmitError::Closed`],
    /// [`SubmitError::Shape`], or [`SubmitError::Poisoned`] — all
    /// returning the payload buffers.
    ///
    /// # Panics
    ///
    /// Panics if `channel` did not come from this pipeline's builder.
    pub fn try_submit(
        &self,
        channel: ChannelId,
        input: Vec<C64>,
        output: Vec<C64>,
    ) -> Result<u64, SubmitError> {
        if let Err(error) = self.validate(channel, &input, &output) {
            return Err(SubmitError::Shape { error, input, output });
        }
        // Poisoning is checked before closed: a worker panic also closes
        // the intake, and "the pipeline is dead" is the truer refusal.
        if self.shared.worker_panicked.load(Ordering::SeqCst) {
            return Err(SubmitError::Poisoned { input, output });
        }
        if self.shared.closed.load(Ordering::SeqCst) {
            return Err(SubmitError::Closed { input, output });
        }
        if !self.shared.budget.try_acquire() {
            self.shared.budget.rejected.fetch_add(1, Ordering::SeqCst);
            return Err(SubmitError::QueueFull { input, output });
        }
        self.finish_enqueue(channel, input, output)
    }

    /// Blocking submission: waits for budget space instead of refusing.
    /// A thin wrapper over [`StreamPipeline::submit_checked`] kept for
    /// callers that prefer a crash to handling a dead pipeline.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] (also while waiting, if the pipeline
    /// closes under the caller) or [`SubmitError::Shape`] — both
    /// returning the payload buffers. Never [`SubmitError::QueueFull`].
    ///
    /// # Panics
    ///
    /// Panics if `channel` did not come from this pipeline's builder,
    /// or if a pipeline worker has panicked (the pipeline is dead; a
    /// blocked submitter must fail, not wait forever).
    pub fn submit(
        &self,
        channel: ChannelId,
        input: Vec<C64>,
        output: Vec<C64>,
    ) -> Result<u64, SubmitError> {
        match self.submit_checked(channel, input, output) {
            Err(SubmitError::Poisoned { .. }) => {
                panic!("a stream worker panicked; the pipeline is dead")
            }
            other => other,
        }
    }

    /// Blocking submission that reports a dead pipeline as an error
    /// instead of panicking: waits for budget space, and returns
    /// [`SubmitError::Poisoned`] (with the payload buffers) if a worker
    /// panic poisons the pipeline before the symbol is accepted. The
    /// form for callers — like a connection handler — that must degrade
    /// gracefully rather than unwind.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`], [`SubmitError::Shape`], or
    /// [`SubmitError::Poisoned`] — all returning the payload buffers.
    /// Never [`SubmitError::QueueFull`].
    ///
    /// # Panics
    ///
    /// Panics if `channel` did not come from this pipeline's builder.
    pub fn submit_checked(
        &self,
        channel: ChannelId,
        input: Vec<C64>,
        output: Vec<C64>,
    ) -> Result<u64, SubmitError> {
        if let Err(error) = self.validate(channel, &input, &output) {
            return Err(SubmitError::Shape { error, input, output });
        }
        loop {
            if self.shared.worker_panicked.load(Ordering::SeqCst) {
                return Err(SubmitError::Poisoned { input, output });
            }
            if self.shared.closed.load(Ordering::SeqCst) {
                return Err(SubmitError::Closed { input, output });
            }
            if self.shared.budget.try_acquire() {
                return self.finish_enqueue(channel, input, output);
            }
            // Park on the space gate. The waiter-count increment comes
            // *before* the re-check under the gate mutex: a worker
            // freeing budget reads the count after its release, so
            // either it sees us (and notifies) or we see its release
            // (and skip the wait) — never neither.
            let gate = &self.shared.space;
            gate.waiting.fetch_add(1, Ordering::SeqCst);
            let mut g = gate.m.lock().expect("stream gate poisoned");
            while !self.shared.worker_panicked.load(Ordering::SeqCst)
                && !self.shared.closed.load(Ordering::SeqCst)
                && self.shared.budget.queued.load(Ordering::SeqCst) >= self.shared.budget.depth
            {
                g = gate.cv.wait(g).expect("stream gate poisoned");
            }
            drop(g);
            gate.waiting.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Routes an accepted symbol (budget slot already held) to its home
    /// shard. Sequence numbers are assigned under the shard lock, so a
    /// channel's queue order always matches its seq order.
    fn finish_enqueue(
        &self,
        channel: ChannelId,
        input: Vec<C64>,
        output: Vec<C64>,
    ) -> Result<u64, SubmitError> {
        let idx = channel.index;
        let chan = &self.shared.chans[idx];
        let shard = &self.shared.shards[chan.home];
        let mut q = shard.lock();
        // Re-check closed under the shard lock: the home worker's exit
        // path checks closed-then-empty under this same lock, so a push
        // here can never land after its final drain (the critical
        // sections are totally ordered, and close's store happens-before
        // whichever runs second).
        if self.shared.closed.load(Ordering::SeqCst) {
            drop(q);
            self.shared.budget.release(1);
            return Err(SubmitError::Closed { input, output });
        }
        let seq = chan.next_seq.fetch_add(1, Ordering::SeqCst);
        let sampled = self.shared.obs.as_ref().is_some_and(|o| seq.is_multiple_of(o.sample_every));
        let submitted_at = if sampled { Instant::now() } else { self.shared.epoch };
        q.queue.push_back(Job { channel, seq, input, output, submitted_at, sampled });
        q.high_water = q.high_water.max(q.queue.len());
        let home_idle = q.idle;
        let qlen = q.queue.len();
        if home_idle {
            shard.work.notify_one();
        }
        drop(q);
        // Home worker busy and a backlog forming: poke a parked worker
        // to wake and steal. A singleton queue is deliberately not
        // poked — the home worker claims it next, and thieves won't
        // take the last job from a live shard anyway.
        if !home_idle && qlen >= 2 {
            self.poke_thief(chan.home);
        }
        Ok(seq)
    }

    /// Wakes one parked worker (other than `home`) so it can steal from
    /// the backlog. Scans the lock-free idle hints with a rotating
    /// cursor; locks only the chosen victim's shard, and only when the
    /// hint says its worker is parked.
    fn poke_thief(&self, home: usize) {
        let shards = &self.shared.shards;
        let n = shards.len();
        if n <= 1 {
            return;
        }
        let start = self.shared.poke_cursor.fetch_add(1, Ordering::Relaxed) % n;
        for step in 0..n {
            let v = (start + step) % n;
            if v == home || !shards[v].idle_hint.load(Ordering::SeqCst) {
                continue;
            }
            let mut q = shards[v].lock();
            if q.idle {
                q.poked = true;
                shards[v].work.notify_one();
                return;
            }
        }
    }

    /// Non-blocking delivery: the channel's next in-order completion,
    /// if it has finished.
    ///
    /// # Panics
    ///
    /// Panics if `channel` did not come from this pipeline's builder.
    pub fn try_recv(&self, channel: ChannelId) -> Option<Completion> {
        let idx = self.chan(channel);
        let mut ds = self.shared.delivery.lock().expect("stream delivery poisoned");
        let drained = self.shared.drain_completions(&mut ds);
        let got = self.shared.pop_delivery(&mut ds, idx);
        drop(ds);
        if drained > 0 {
            // The drain may have moved *other* channels' completions
            // into their rings; their blocked receivers wake here.
            self.shared.done.notify_if_waiting();
        }
        got
    }

    /// Blocking delivery: waits for the channel's next in-order
    /// completion. Returns `None` only when the channel has nothing
    /// outstanding (every accepted symbol already delivered) — so a
    /// drain loop is simply `while let Some(c) = pipeline.recv(ch)`.
    /// A thin wrapper over [`StreamPipeline::recv_checked`] kept for
    /// callers that prefer a crash to handling a dead pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `channel` did not come from this pipeline's builder,
    /// or if a pipeline worker has panicked — symbols the worker had
    /// claimed are lost, so waiting for them would hang forever.
    /// Completions that were already parked are still delivered before
    /// the panic is raised.
    pub fn recv(&self, channel: ChannelId) -> Option<Completion> {
        match self.recv_checked(channel) {
            Ok(got) => got,
            Err(_) => panic!(
                "a stream worker panicked; its claimed symbols are lost and the pipeline \
                 is dead"
            ),
        }
    }

    /// Blocking delivery that reports a dead pipeline as an error
    /// instead of panicking: `Ok(Some)` is the channel's next in-order
    /// completion, `Ok(None)` means the channel is drained, and
    /// [`RecvError::Poisoned`] means a worker panic killed the pipeline
    /// (parked completions are still delivered first). Never returns
    /// [`RecvError::Timeout`].
    ///
    /// # Errors
    ///
    /// [`RecvError::Poisoned`] once the channel's parked completions
    /// are exhausted on a poisoned pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `channel` did not come from this pipeline's builder.
    pub fn recv_checked(&self, channel: ChannelId) -> Result<Option<Completion>, RecvError> {
        self.recv_deadline(self.chan(channel), None)
    }

    /// Deadline-bounded delivery: like
    /// [`recv_checked`](StreamPipeline::recv_checked), but waits at most
    /// `timeout` for the channel's next in-order completion. Lets a
    /// caller — a connection handler, say — time out a stalled channel
    /// and shed its client instead of hanging forever.
    ///
    /// A timeout loses nothing: the outstanding symbol stays queued or
    /// in flight, and a later receive can still collect it. A
    /// completion that lands exactly at the deadline wins over the
    /// timeout — one final delivery attempt runs after the wait expires.
    ///
    /// # Errors
    ///
    /// [`RecvError::Timeout`] if the deadline passes with the channel
    /// still owing a completion; [`RecvError::Poisoned`] as for
    /// `recv_checked`.
    ///
    /// # Panics
    ///
    /// Panics if `channel` did not come from this pipeline's builder.
    pub fn recv_timeout(
        &self,
        channel: ChannelId,
        timeout: Duration,
    ) -> Result<Option<Completion>, RecvError> {
        // A deadline too far to represent means "wait forever".
        self.recv_deadline(self.chan(channel), Instant::now().checked_add(timeout))
    }

    /// The one receive loop behind `recv`/`recv_checked`/`recv_timeout`:
    /// drain the outboxes, pop the channel's ring, and park on the done
    /// gate (deadline-bounded when given) until something changes. After
    /// the deadline expires the loop runs one last full delivery attempt
    /// before conceding [`RecvError::Timeout`].
    fn recv_deadline(
        &self,
        idx: usize,
        deadline: Option<Instant>,
    ) -> Result<Option<Completion>, RecvError> {
        let mut expired = false;
        loop {
            let mut ds = self.shared.delivery.lock().expect("stream delivery poisoned");
            let drained = self.shared.drain_completions(&mut ds);
            let got = self.shared.pop_delivery(&mut ds, idx);
            drop(ds);
            if drained > 0 {
                self.shared.done.notify_if_waiting();
            }
            if let Some(done) = got {
                return Ok(Some(done));
            }
            if self.shared.worker_panicked.load(Ordering::SeqCst) {
                return Err(RecvError::Poisoned);
            }
            let chan = &self.shared.chans[idx];
            // delivered is loaded first: it only trails next_seq, so
            // equality here means the channel was truly drained.
            if chan.delivered.load(Ordering::SeqCst) == chan.next_seq.load(Ordering::SeqCst) {
                return Ok(None);
            }
            if expired {
                return Err(RecvError::Timeout);
            }
            // Park on the done gate; the predicate re-check is
            // lock-free (outbox occupancy hints + the channel's
            // completed/delivered mirrors), so no waiter ever holds the
            // gate and a scheduler or delivery lock together.
            let gate = &self.shared.done;
            gate.waiting.fetch_add(1, Ordering::SeqCst);
            let mut g = gate.m.lock().expect("stream gate poisoned");
            while !self.recv_progress(idx) {
                match deadline {
                    None => g = gate.cv.wait(g).expect("stream gate poisoned"),
                    Some(when) => {
                        let now = Instant::now();
                        if now >= when {
                            expired = true;
                            break;
                        }
                        g = gate.cv.wait_timeout(g, when - now).expect("stream gate poisoned").0;
                    }
                }
            }
            drop(g);
            gate.waiting.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Whether a parked receiver of channel `idx` has anything to act
    /// on: a poisoned pipeline, a non-empty worker outbox, a completion
    /// already drained into the channel's ring, or a fully-drained
    /// channel (time to return `None`). Outboxes are checked *before*
    /// the completed mirror so a concurrent drain (which bumps the
    /// mirror before clearing the hint) cannot slip between the loads.
    fn recv_progress(&self, idx: usize) -> bool {
        if self.shared.worker_panicked.load(Ordering::SeqCst) {
            return true;
        }
        if self.shared.cbufs.iter().any(|c| c.len_hint.load(Ordering::SeqCst) > 0) {
            return true;
        }
        let chan = &self.shared.chans[idx];
        chan.completed.load(Ordering::SeqCst) > chan.delivered.load(Ordering::SeqCst)
            || chan.delivered.load(Ordering::SeqCst) == chan.next_seq.load(Ordering::SeqCst)
    }

    /// Symbols accepted on `channel` but not yet delivered (queued, in
    /// flight, or parked awaiting their turn).
    ///
    /// # Panics
    ///
    /// Panics if `channel` did not come from this pipeline's builder.
    pub fn outstanding(&self, channel: ChannelId) -> u64 {
        let chan = &self.shared.chans[self.chan(channel)];
        // delivered first: it only trails next_seq, so the subtraction
        // can never underflow even against concurrent submitters.
        let delivered = chan.delivered.load(Ordering::SeqCst);
        chan.next_seq.load(Ordering::SeqCst) - delivered
    }

    /// Stops accepting new submissions. Already-accepted work keeps
    /// flowing: workers drain every shard and completions stay
    /// retrievable. Blocked [`StreamPipeline::submit`] callers return
    /// [`SubmitError::Closed`].
    pub fn close(&self) {
        self.shared.closed.store(true, Ordering::SeqCst);
        for shard in &self.shared.shards {
            // Notify under the shard lock so a worker between its
            // predicate check and its wait cannot miss the wake.
            // Poison-tolerant: close also runs from Drop during unwind.
            let _g = shard.q.lock().ok();
            shard.work.notify_all();
        }
        self.shared.space.notify_all();
        self.shared.done.notify_all();
    }

    /// Whether [`StreamPipeline::close`] (or shutdown) has been called.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::SeqCst)
    }

    /// Whether a worker panic has poisoned the pipeline. A poisoned
    /// pipeline is also closed; the checked calls
    /// ([`StreamPipeline::submit_checked`] /
    /// [`StreamPipeline::recv_checked`] /
    /// [`StreamPipeline::recv_timeout`]) report it as an error, the
    /// legacy forms panic, and [`StreamPipeline::shutdown`] would panic
    /// on join — a graceful owner checks here and drops instead.
    pub fn is_poisoned(&self) -> bool {
        self.shared.worker_panicked.load(Ordering::SeqCst)
    }

    /// A snapshot of the pipeline's counters. Cheap: the delivery lock
    /// (plus one brief shard lock each for the per-shard high-water
    /// marks), no queue traversal.
    pub fn stats(&self) -> StreamStats {
        let mut ds = self.shared.delivery.lock().expect("stream delivery poisoned");
        // Fold in completions still sitting in worker outboxes so
        // `completed` counts every finished transform, not just the
        // drained ones.
        let drained = self.shared.drain_completions(&mut ds);
        let per_channel: Vec<ChannelStats> = ds
            .rings
            .iter()
            .enumerate()
            .map(|(i, ring)| ChannelStats {
                submitted: self.shared.chans[i].next_seq.load(Ordering::SeqCst),
                completed: ring.completed,
                delivered: ring.delivered,
            })
            .collect();
        drop(ds);
        if drained > 0 {
            self.shared.done.notify_if_waiting();
        }
        let shard_high_water: Vec<usize> =
            self.shared.shards.iter().map(|s| s.lock().high_water).collect();
        StreamStats {
            submitted: per_channel.iter().map(|c| c.submitted).sum(),
            completed: per_channel.iter().map(|c| c.completed).sum(),
            delivered: per_channel.iter().map(|c| c.delivered).sum(),
            rejected: self.shared.budget.rejected.load(Ordering::SeqCst),
            in_queue: self.shared.budget.queued.load(Ordering::SeqCst),
            in_flight: self.shared.budget.in_flight.load(Ordering::SeqCst),
            queue_capacity: self.queue_depth,
            queue_high_water: self.shared.budget.high_water.load(Ordering::SeqCst),
            shard_high_water,
            worker_transforms: self.shared.wstats.iter().map(|w| w.transforms.get()).collect(),
            worker_local: self.shared.wstats.iter().map(|w| w.local_symbols.get()).collect(),
            worker_stolen: self.shared.wstats.iter().map(|w| w.stolen_symbols.get()).collect(),
            worker_steals: self.shared.wstats.iter().map(|w| w.steals.get()).collect(),
            per_channel,
            obs: self.shared.obs.as_ref().map(|obs| StreamObs {
                per_channel: (0..self.specs.len())
                    .map(|i| {
                        let base = i * Stage::COUNT;
                        let hist =
                            |stage: Stage| obs.recorder.series_histogram(base + stage.index());
                        ChannelObs {
                            queue_wait: hist(Stage::QueueWait),
                            transform: hist(Stage::Transform),
                            reorder_park: hist(Stage::ReorderPark),
                            latency: hist(Stage::Deliver),
                        }
                    })
                    .collect(),
            }),
            elapsed: self.started.elapsed(),
        }
    }

    /// Graceful shutdown: closes the intake, lets the workers drain
    /// every shard, joins the pool, and returns the final stats plus
    /// every undelivered [`Completion`] (per-channel submission order,
    /// channels in registration order) — accepted work is never lost,
    /// even if the caller stopped receiving.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread itself panicked.
    pub fn shutdown(mut self) -> (StreamStats, Vec<Completion>) {
        self.close();
        for handle in self.handles.drain(..) {
            handle.join().expect("stream worker panicked");
        }
        let leftover = {
            let mut ds = self.shared.delivery.lock().expect("stream delivery poisoned");
            self.shared.drain_completions(&mut ds);
            let mut leftover = Vec::new();
            for idx in 0..self.specs.len() {
                while let Some(done) = self.shared.pop_delivery(&mut ds, idx) {
                    leftover.push(done);
                }
                let ring = &ds.rings[idx];
                debug_assert!(
                    ring.parked.iter().all(Option::is_none)
                        && ring.delivered == self.shared.chans[idx].next_seq.load(Ordering::SeqCst),
                    "channel {idx} lost work at shutdown"
                );
            }
            leftover
        };
        (self.stats(), leftover)
    }

    fn validate(&self, channel: ChannelId, input: &[C64], output: &[C64]) -> Result<(), FftError> {
        let spec = &self.specs[self.chan(channel)];
        if input.len() != spec.input_len() {
            return Err(FftError::LengthMismatch { expected: spec.input_len(), got: input.len() });
        }
        if output.len() != spec.output_len() {
            return Err(FftError::LengthMismatch {
                expected: spec.output_len(),
                got: output.len(),
            });
        }
        Ok(())
    }
}

impl Drop for StreamPipeline {
    /// Dropping without [`StreamPipeline::shutdown`] still drains and
    /// joins the pool (undelivered completions are discarded with the
    /// pipeline).
    fn drop(&mut self) {
        self.close();
        for handle in self.handles.drain(..) {
            // Don't double-panic while unwinding.
            let _ = handle.join();
        }
    }
}

/// Everything the pool and its callers share. Split by role: the
/// scheduler side (`shards`, `budget`), the delivery side (`cbufs`,
/// `delivery`), the wake gates, per-channel atomics, and the metric
/// store — each with its own synchronisation, so the three stages of a
/// symbol's life never serialize on a common lock.
pub(crate) struct Shared {
    /// One local queue per worker; a channel's symbols go to its home
    /// worker's shard.
    pub(crate) shards: Vec<Shard>,
    /// The pipeline-wide lock-free submission budget.
    pub(crate) budget: Budget,
    /// Submitters blocked waiting for budget space.
    pub(crate) space: Gate,
    /// Receivers blocked waiting for completions.
    pub(crate) done: Gate,
    /// The reorder rings, behind the delivery-only lock. Workers never
    /// take it.
    pub(crate) delivery: Mutex<DeliveryState>,
    /// One completion outbox per worker.
    pub(crate) cbufs: Vec<CompletionBuf>,
    /// Per-channel lock-free state: seq counters and the home worker.
    pub(crate) chans: Vec<ChanShared>,
    /// Per-worker scheduler counters (transforms, local/stolen, steals).
    pub(crate) wstats: Vec<WorkerCounters>,
    /// Intake closed ([`StreamPipeline::close`] or a worker panic).
    pub(crate) closed: AtomicBool,
    /// Set by a worker's unwind guard: jobs it had claimed are gone,
    /// so blocking callers must fail loudly instead of waiting forever.
    pub(crate) worker_panicked: AtomicBool,
    /// Rotates which idle worker gets poked to steal, so repeated pokes
    /// spread across the pool.
    pub(crate) poke_cursor: AtomicUsize,
    /// Metrics recorder, when the pipeline was built with
    /// observability on. Recording is lock-free; `None` removes every
    /// clock read from the hot path.
    pub(crate) obs: Option<PipelineObs>,
    /// Stand-in stamp for the metrics-off path: `Instant` fields still
    /// need a value, but nothing may read the clock for them.
    pub(crate) epoch: Instant,
}

impl core::fmt::Debug for Shared {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Shared").finish_non_exhaustive()
    }
}

/// Per-channel lock-free state. `next_seq` is only advanced under the
/// channel's home shard lock (so queue order matches seq order), but
/// read lock-free; `delivered`/`completed` mirror the ring counters so
/// `outstanding` and the recv wait predicate never touch the delivery
/// lock.
pub(crate) struct ChanShared {
    pub(crate) next_seq: AtomicU64,
    pub(crate) delivered: AtomicU64,
    pub(crate) completed: AtomicU64,
    /// The worker this channel's symbols are queued on.
    pub(crate) home: usize,
}

/// The pipeline's metric store: `(channel, stage)` series over
/// per-worker shards plus one caller shard for the delivery-side
/// stages.
pub(crate) struct PipelineObs {
    pub(crate) recorder: Recorder,
    /// The shard delivery-path records go to (`pop_delivery` runs under
    /// the delivery lock, so one shard serves every delivering thread).
    pub(crate) caller_shard: usize,
    /// Stage-timing sample rate: symbols whose per-channel sequence
    /// number is a multiple of this get clock stamps; the rest skip
    /// every clock read (see [`StreamBuilder::sample_every`]).
    pub(crate) sample_every: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use afft_core::engine::{EngineRegistry, FftEngine};
    use afft_core::ofdm::{qpsk_demap, qpsk_map};
    use afft_num::Complex;

    fn tagged(n: usize, tag: f64) -> Vec<C64> {
        (0..n).map(|i| Complex::new(tag, i as f64 / n as f64)).collect()
    }

    #[test]
    fn single_channel_round_trip_delivers_in_order() {
        let mut builder =
            StreamPipeline::builder(EngineRegistry::standard).workers(3).queue_depth(4);
        let ch = builder.channel(ChannelSpec::transform(64, "radix2_dit", Direction::Forward));
        let pipeline = builder.build().unwrap();

        let mut engine = EngineRegistry::standard(64).unwrap().take("radix2_dit").unwrap();
        let mut expected = Vec::new();
        for s in 0..16u64 {
            let x = tagged(64, s as f64);
            expected.push(engine.execute(&x, Direction::Forward).unwrap());
            let seq = pipeline.submit(ch, x, vec![Complex::zero(); 64]).unwrap();
            assert_eq!(seq, s);
        }
        for s in 0..16u64 {
            let done = pipeline.recv(ch).expect("outstanding symbol");
            assert_eq!(done.seq, s);
            assert!(done.error.is_none());
            assert_eq!(done.output, expected[s as usize], "bit-identical to direct execution");
            assert_eq!(done.input, tagged(64, s as f64), "input handed back unchanged");
        }
        assert!(pipeline.recv(ch).is_none(), "drained channel yields None");
        let (stats, leftover) = pipeline.shutdown();
        assert!(leftover.is_empty());
        assert_eq!(stats.submitted, 16);
        assert_eq!(stats.completed, 16);
        assert_eq!(stats.delivered, 16);
        assert_eq!(stats.worker_transforms.iter().sum::<u64>(), 16);
    }

    #[test]
    fn modem_channels_modulate_and_demodulate() {
        let mut builder =
            StreamPipeline::builder(EngineRegistry::standard).workers(2).queue_depth(8);
        let tx = builder.channel(ChannelSpec {
            n: 128,
            engine: "array_fft".into(),
            op: ChannelOp::Modulate { cp: 32 },
        });
        let rx = builder.channel(ChannelSpec {
            n: 128,
            engine: "array_fft".into(),
            op: ChannelOp::Demodulate { cp: 32 },
        });
        let pipeline = builder.build().unwrap();
        assert_eq!(pipeline.spec(tx).input_len(), 128);
        assert_eq!(pipeline.spec(tx).output_len(), 160);
        assert_eq!(pipeline.spec(rx).input_len(), 160);
        assert_eq!(pipeline.spec(rx).output_len(), 128);

        let bits: Vec<(bool, bool)> = (0..128).map(|i| (i % 2 == 0, i % 5 == 0)).collect();
        pipeline.submit(tx, qpsk_map(&bits), vec![Complex::zero(); 160]).unwrap();
        let sym = pipeline.recv(tx).unwrap();
        assert!(sym.error.is_none());
        pipeline.submit(rx, sym.output, vec![Complex::zero(); 128]).unwrap();
        let bins = pipeline.recv(rx).unwrap();
        assert!(bins.error.is_none());
        assert_eq!(qpsk_demap(&bins.output), bits, "stream modem round trip");
    }

    #[test]
    fn shape_and_closed_refusals_hand_buffers_back() {
        let mut builder = StreamPipeline::builder(EngineRegistry::standard).workers(1);
        let ch = builder.channel(ChannelSpec::transform(64, "mcfft", Direction::Inverse));
        let pipeline = builder.build().unwrap();

        let err = pipeline.submit(ch, vec![Complex::zero(); 32], vec![Complex::zero(); 64]);
        match err.unwrap_err() {
            SubmitError::Shape { error, input, output } => {
                assert_eq!(error, FftError::LengthMismatch { expected: 64, got: 32 });
                assert_eq!((input.len(), output.len()), (32, 64));
            }
            other => panic!("expected Shape, got {other}"),
        }
        let err = pipeline.try_submit(ch, vec![Complex::zero(); 64], vec![Complex::zero(); 32]);
        assert!(matches!(err.unwrap_err(), SubmitError::Shape { .. }));

        pipeline.close();
        assert!(pipeline.is_closed());
        let err = pipeline.submit(ch, vec![Complex::zero(); 64], vec![Complex::zero(); 64]);
        let (input, output) = match err.unwrap_err() {
            e @ SubmitError::Closed { .. } => e.into_buffers(),
            other => panic!("expected Closed, got {other}"),
        };
        assert_eq!((input.len(), output.len()), (64, 64));
    }

    #[test]
    fn shutdown_returns_undelivered_completions_in_order() {
        let mut builder =
            StreamPipeline::builder(EngineRegistry::standard).workers(2).queue_depth(16);
        let ch = builder.channel(ChannelSpec::transform(64, "radix2_dif", Direction::Forward));
        let pipeline = builder.build().unwrap();
        for s in 0..10u64 {
            pipeline.submit(ch, tagged(64, s as f64), vec![Complex::zero(); 64]).unwrap();
        }
        // Deliver only the first three; shutdown must hand back the rest.
        for s in 0..3u64 {
            assert_eq!(pipeline.recv(ch).unwrap().seq, s);
        }
        let (stats, leftover) = pipeline.shutdown();
        assert_eq!(stats.submitted, 10);
        assert_eq!(stats.completed, 10, "shutdown drains in-flight work");
        assert_eq!(leftover.len(), 7);
        let seqs: Vec<u64> = leftover.iter().map(|c| c.seq).collect();
        assert_eq!(seqs, (3..10).collect::<Vec<u64>>(), "leftover stays in submission order");
    }

    #[test]
    fn builder_rejects_bad_channels_and_empty_pipelines() {
        let err = StreamPipeline::builder(EngineRegistry::standard).build().unwrap_err();
        assert!(matches!(err, FftError::InvalidDecomposition { .. }));

        let mut builder = StreamPipeline::builder(EngineRegistry::standard);
        builder.channel(ChannelSpec::transform(64, "asip_iss", Direction::Forward));
        assert!(matches!(builder.build().unwrap_err(), FftError::Backend { .. }));

        let mut builder = StreamPipeline::builder(EngineRegistry::standard);
        builder.channel(ChannelSpec {
            n: 64,
            engine: "radix2_dit".into(),
            op: ChannelOp::Modulate { cp: 64 },
        });
        assert!(matches!(builder.build().unwrap_err(), FftError::InvalidDecomposition { .. }));
    }

    #[test]
    fn stats_track_queue_pressure() {
        let mut builder =
            StreamPipeline::builder(EngineRegistry::standard).workers(1).queue_depth(2);
        let ch = builder.channel(ChannelSpec::transform(64, "dft_naive", Direction::Forward));
        let pipeline = builder.build().unwrap();
        assert_eq!(pipeline.queue_capacity(), 2);
        // AFFT_STREAM_WORKERS may force a larger pool in CI.
        assert!(pipeline.worker_count() >= 1);
        assert_eq!(pipeline.channel_count(), 1);
        assert_eq!(ch.index(), 0);
        assert!(pipeline.home_worker(ch) < pipeline.worker_count());
        for s in 0..6u64 {
            pipeline.submit(ch, tagged(64, s as f64), vec![Complex::zero(); 64]).unwrap();
        }
        while pipeline.recv(ch).is_some() {}
        let stats = pipeline.stats();
        assert_eq!(stats.delivered, 6);
        assert!(stats.queue_high_water >= 1 && stats.queue_high_water <= 2);
        assert_eq!(stats.shard_high_water.len(), pipeline.worker_count());
        assert!(stats.shard_high_water[pipeline.home_worker(ch)] >= 1);
        assert_eq!(stats.per_channel.len(), 1);
        assert_eq!(stats.per_channel[0].delivered, 6);
        assert!(stats.throughput() > 0.0);
    }

    /// A backend that panics on any non-zero symbol — the warmup's
    /// zero symbol passes, then real traffic detonates the worker.
    struct FragileEngine {
        n: usize,
    }

    impl FftEngine for FragileEngine {
        fn name(&self) -> &str {
            "fragile"
        }

        fn len(&self) -> usize {
            self.n
        }

        fn execute_into(
            &mut self,
            input: &[C64],
            output: &mut [C64],
            _dir: Direction,
        ) -> Result<(), FftError> {
            assert!(input.iter().all(|c| c.re == 0.0 && c.im == 0.0), "fragile engine exploded");
            for slot in output.iter_mut() {
                *slot = Complex::zero();
            }
            Ok(())
        }

        fn traffic(&self) -> Option<afft_core::cached::MemTraffic> {
            None
        }
    }

    fn fragile_registry(n: usize) -> Result<EngineRegistry, FftError> {
        let mut registry = EngineRegistry::new();
        registry.register(Box::new(FragileEngine { n }));
        Ok(registry)
    }

    #[test]
    fn worker_panic_fails_blocked_callers_instead_of_hanging() {
        let mut builder = StreamPipeline::builder(fragile_registry).workers(1).queue_depth(4);
        let ch = builder.channel(ChannelSpec::transform(64, "fragile", Direction::Forward));
        let pipeline = builder.build().unwrap();

        // The zero symbol passes; the worker is alive and parking.
        pipeline.submit(ch, vec![Complex::zero(); 64], vec![Complex::zero(); 64]).unwrap();
        assert!(pipeline.recv(ch).unwrap().error.is_none());

        // A non-zero symbol panics inside the worker. recv must
        // propagate that as a panic, not block forever on a completion
        // that will never be parked.
        pipeline.submit(ch, vec![Complex::new(1.0, 0.0); 64], vec![Complex::zero(); 64]).unwrap();
        let recv = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pipeline.recv(ch)));
        assert!(recv.is_err(), "recv must fail loudly after a worker panic");
        // Blocking submit fails loudly too, and the intake is closed.
        let blocked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pipeline.submit(ch, vec![Complex::zero(); 64], vec![Complex::zero(); 64])
        }));
        assert!(blocked.is_err(), "submit must fail loudly after a worker panic");
        assert!(pipeline.is_closed());
        // Drop (not shutdown) so the test itself doesn't re-panic on join.
        drop(pipeline);
    }

    #[test]
    #[should_panic(expected = "different StreamPipeline")]
    fn foreign_channel_ids_are_rejected_even_with_in_range_indices() {
        let mut builder = StreamPipeline::builder(EngineRegistry::standard).workers(1);
        let foreign = builder.channel(ChannelSpec::transform(64, "radix2_dit", Direction::Forward));
        let _other = builder.build().unwrap();

        let mut builder = StreamPipeline::builder(EngineRegistry::standard).workers(1);
        let _local = builder.channel(ChannelSpec {
            n: 64,
            engine: "radix2_dit".into(),
            op: ChannelOp::Modulate { cp: 16 },
        });
        let pipeline = builder.build().unwrap();
        // Index 0 is in range here but the id belongs to `_other`:
        // silently resolving it would submit against the wrong op.
        let _ = pipeline.spec(foreign);
    }

    #[test]
    fn observability_off_records_nothing() {
        // Explicit override, so the test is deterministic regardless of
        // the ambient AFFT_OBS (CI runs the suite under both values).
        let mut builder =
            StreamPipeline::builder(EngineRegistry::standard).workers(2).observability(false);
        let ch = builder.channel(ChannelSpec::transform(64, "radix2_dit", Direction::Forward));
        let pipeline = builder.build().unwrap();
        assert!(!pipeline.observability_enabled());
        pipeline.submit(ch, tagged(64, 1.0), vec![Complex::zero(); 64]).unwrap();
        assert!(pipeline.recv(ch).is_some());
        let (stats, _) = pipeline.shutdown();
        assert!(stats.obs.is_none(), "metrics off must leave no histograms");
    }

    #[test]
    fn observability_histograms_count_every_symbol() {
        // sample_every(1) stamps every symbol, so counts are exact.
        let mut builder = StreamPipeline::builder(EngineRegistry::standard)
            .workers(3)
            .queue_depth(8)
            .observability(true)
            .sample_every(1);
        let a = builder.channel(ChannelSpec::transform(64, "radix2_dit", Direction::Forward));
        let b = builder.channel(ChannelSpec {
            n: 64,
            engine: "radix2_dit".into(),
            op: ChannelOp::Modulate { cp: 16 },
        });
        let pipeline = builder.build().unwrap();
        assert!(pipeline.observability_enabled());
        for s in 0..20u64 {
            pipeline.submit(a, tagged(64, s as f64), vec![Complex::zero(); 64]).unwrap();
        }
        pipeline.submit(b, tagged(64, 0.5), vec![Complex::zero(); 80]).unwrap();
        while pipeline.recv(a).is_some() {}
        while pipeline.recv(b).is_some() {}
        let (stats, _) = pipeline.shutdown();
        let obs = stats.obs.expect("metrics on");
        assert_eq!(obs.per_channel.len(), 2);
        let ch_a = &obs.per_channel[0];
        // Every delivered symbol shows up in every stage histogram.
        assert_eq!(ch_a.latency.count(), 20);
        assert_eq!(ch_a.queue_wait.count(), 20);
        assert_eq!(ch_a.transform.count(), 20);
        assert_eq!(ch_a.reorder_park.count(), 20);
        assert_eq!(obs.per_channel[1].latency.count(), 1);
        // End-to-end latency dominates its components at the median.
        let p50 = ch_a.latency.p50().unwrap();
        assert!(p50 >= ch_a.transform.p50().unwrap() / 2, "latency {p50}ns vs transform");
        assert!(ch_a.latency.p99().unwrap() >= p50);
        // The named snapshot and JSON exports carry the same series.
        let snap = obs.snapshot();
        assert_eq!(snap.get("ch0/deliver").unwrap().count(), 20);
        assert!(obs.to_json().contains("\"channel\":1"));
    }

    #[test]
    fn default_sampling_stamps_one_symbol_in_eight() {
        // Sampling is by per-channel sequence number, so the sampled
        // subset is deterministic: seqs 0 and 8 out of 0..12.
        let mut builder =
            StreamPipeline::builder(EngineRegistry::standard).workers(2).observability(true);
        let ch = builder.channel(ChannelSpec::transform(64, "radix2_dit", Direction::Forward));
        let pipeline = builder.build().unwrap();
        for s in 0..12u64 {
            pipeline.submit(ch, tagged(64, s as f64), vec![Complex::zero(); 64]).unwrap();
        }
        while pipeline.recv(ch).is_some() {}
        let (stats, _) = pipeline.shutdown();
        assert_eq!(stats.delivered, 12);
        let obs = stats.obs.expect("metrics on");
        for (_, hist) in obs.per_channel[0].stages() {
            assert_eq!(hist.count(), 2, "12 symbols at 1-in-{DEFAULT_SAMPLE_EVERY}");
        }
    }

    #[test]
    fn channel_spec_shapes_and_plan_constructor() {
        let spec = ChannelSpec::transform(256, "array_fft", Direction::Inverse);
        assert_eq!((spec.input_len(), spec.output_len()), (256, 256));
        let spec = ChannelSpec { n: 256, engine: "x".into(), op: ChannelOp::Modulate { cp: 64 } };
        assert_eq!((spec.input_len(), spec.output_len()), (256, 320));
        let spec = ChannelSpec { n: 256, engine: "x".into(), op: ChannelOp::Demodulate { cp: 64 } };
        assert_eq!((spec.input_len(), spec.output_len()), (320, 256));

        let mut planner = afft_planner::Planner::new();
        let plan = planner.plan(128, afft_planner::Strategy::Estimate).unwrap();
        let spec = ChannelSpec::from_plan(&plan, ChannelOp::Demodulate { cp: 32 });
        assert_eq!(spec.n, 128);
        assert_eq!(spec.engine, plan.best().name);
    }

    #[test]
    fn round_robin_homes_cover_the_pool() {
        let mut builder =
            StreamPipeline::builder(EngineRegistry::standard).workers(2).queue_depth(8);
        let chs: Vec<ChannelId> = (0..4)
            .map(|_| builder.channel(ChannelSpec::transform(64, "radix2_dit", Direction::Forward)))
            .collect();
        let pipeline = builder.build().unwrap();
        let workers = pipeline.worker_count();
        for (i, ch) in chs.iter().enumerate() {
            assert_eq!(pipeline.home_worker(*ch), i % workers, "round-robin affinity");
        }
    }
}
