//! The sharded submission side of the scheduler: one bounded local
//! queue per worker, a lock-free global in-flight budget, and the two
//! wake gates blocked callers park on.
//!
//! # Locking discipline
//!
//! Every lock here is leaf-like and the hot paths shard by worker:
//!
//! * A submitter touches exactly one [`Shard`] mutex — its channel's
//!   home shard — plus one atomic CAS on the [`Budget`]. Two channels
//!   homed on different workers never contend.
//! * A worker claiming local work touches only its own shard mutex; a
//!   worker stealing touches one victim shard mutex. No lock is shared
//!   by more than one worker on the steady-state (local-hit) path.
//! * The [`Gate`] mutexes are used **only** when a caller actually
//!   blocks (`submit` with the budget exhausted, `recv` with nothing
//!   deliverable) and by the notifying side, which first checks the
//!   gate's waiter count with one atomic load — an uncontended stream
//!   never locks them.
//!
//! Lock ordering: a gate mutex is only ever the *outermost* lock
//! (blocked callers re-check state through shard/delivery locks while
//! holding it); workers acquire shard, completion-buffer, and gate
//! mutexes one at a time, never nested. No cycle exists.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use afft_num::C64;

use crate::pipeline::ChannelId;

/// One queued symbol, parked in a shard's local queue until a worker
/// claims it.
pub(crate) struct Job {
    pub(crate) channel: ChannelId,
    pub(crate) seq: u64,
    pub(crate) input: Vec<C64>,
    pub(crate) output: Vec<C64>,
    /// When the submission was accepted (the `epoch` stand-in for
    /// unsampled symbols and with metrics off).
    pub(crate) submitted_at: Instant,
    /// Whether this symbol carries stage-timing stamps (metrics on and
    /// its sequence number hit the sample rate).
    pub(crate) sampled: bool,
}

/// The mutex-guarded part of one worker's shard: its local queue and
/// the park-state handshake with submitters.
pub(crate) struct ShardQ {
    pub(crate) queue: VecDeque<Job>,
    /// The home worker is parked on this shard's condvar.
    pub(crate) idle: bool,
    /// A submitter elsewhere asked this (idle) worker to wake and
    /// attempt a steal — cleared by the worker on wake, so a poke is
    /// never lost to the "queue still empty" re-check.
    pub(crate) poked: bool,
    /// Deepest this shard's local queue has ever been.
    pub(crate) high_water: usize,
}

/// One per-worker scheduler shard: the local queue, the condvar its
/// home worker parks on, and a lock-free mirror of the parked state so
/// submitters can scan for a thief to poke without touching foreign
/// locks.
pub(crate) struct Shard {
    pub(crate) q: Mutex<ShardQ>,
    /// The home worker waits here; submitters notify on push (home
    /// idle) or poke (home busy, this worker idle).
    pub(crate) work: Condvar,
    /// Lock-free mirror of [`ShardQ::idle`], maintained by the home
    /// worker around its park — the poke scan reads this instead of
    /// locking every shard.
    pub(crate) idle_hint: AtomicBool,
}

impl Shard {
    pub(crate) fn new(depth: usize) -> Shard {
        Shard {
            q: Mutex::new(ShardQ {
                queue: VecDeque::with_capacity(depth),
                idle: false,
                poked: false,
                high_water: 0,
            }),
            work: Condvar::new(),
            idle_hint: AtomicBool::new(false),
        }
    }

    pub(crate) fn lock(&self) -> std::sync::MutexGuard<'_, ShardQ> {
        self.q.lock().expect("stream shard poisoned")
    }
}

/// The global backpressure budget: how many accepted symbols may sit
/// in local queues, pipeline-wide. All lock-free — acceptance is one
/// CAS, release is one `fetch_sub` — so the budget never becomes the
/// serialization point the old single queue was.
pub(crate) struct Budget {
    /// Symbols currently queued (accepted, not yet claimed) across all
    /// shards. Bounded by `depth`.
    pub(crate) queued: AtomicUsize,
    /// The bound: [`StreamBuilder::queue_depth`](crate::StreamBuilder::queue_depth).
    pub(crate) depth: usize,
    /// Max concurrent `queued` ever observed (the global queue
    /// high-water mark; per-shard marks live in [`ShardQ`]).
    pub(crate) high_water: AtomicUsize,
    /// `try_submit` refusals.
    pub(crate) rejected: AtomicU64,
    /// Symbols claimed by a worker and not yet parked as completions.
    pub(crate) in_flight: AtomicUsize,
}

impl Budget {
    pub(crate) fn new(depth: usize) -> Budget {
        Budget {
            queued: AtomicUsize::new(0),
            depth,
            high_water: AtomicUsize::new(0),
            rejected: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
        }
    }

    /// Tries to reserve one queue slot; `false` means the pipeline-wide
    /// budget is exhausted (the backpressure signal). On success the
    /// global high-water mark is advanced to the post-acquire depth.
    pub(crate) fn try_acquire(&self) -> bool {
        let got = self
            .queued
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |q| (q < self.depth).then(|| q + 1));
        match got {
            Ok(prev) => {
                self.high_water.fetch_max(prev + 1, Ordering::SeqCst);
                true
            }
            Err(_) => false,
        }
    }

    /// Returns unused slots (a refused enqueue on a closing pipeline).
    pub(crate) fn release(&self, n: usize) {
        self.queued.fetch_sub(n, Ordering::SeqCst);
    }

    /// A worker claimed `n` queued symbols: frees their queue slots and
    /// moves them into the in-flight tally.
    pub(crate) fn on_claim(&self, n: usize) {
        self.queued.fetch_sub(n, Ordering::SeqCst);
        self.in_flight.fetch_add(n, Ordering::SeqCst);
    }

    /// Whether freed queue space should wake blocked submitters: the
    /// low-watermark rule — let the queue drain to half capacity so
    /// each wake is amortised over ~depth/2 submissions.
    pub(crate) fn at_low_watermark(&self) -> bool {
        self.queued.load(Ordering::SeqCst) <= self.depth / 2
    }
}

/// A park-bench for blocked callers: blocked `submit`ters (space gate)
/// and blocked `recv`ers (done gate). The mutex guards nothing but the
/// condvar protocol; all predicate state lives in the shards, budget,
/// and delivery structures, re-checked by waiters while holding the
/// gate so the notify-under-mutex handshake closes the lost-wakeup
/// window.
pub(crate) struct Gate {
    pub(crate) m: Mutex<()>,
    pub(crate) cv: Condvar,
    /// Callers currently parked (or about to park — incremented before
    /// the re-check). Notifiers read this with one atomic load and
    /// skip the gate lock entirely when it is zero.
    pub(crate) waiting: AtomicUsize,
}

impl Gate {
    pub(crate) fn new() -> Gate {
        Gate { m: Mutex::new(()), cv: Condvar::new(), waiting: AtomicUsize::new(0) }
    }

    /// Wakes every parked caller, taking the gate mutex only if anyone
    /// is (or is about to be) parked.
    pub(crate) fn notify_if_waiting(&self) {
        if self.waiting.load(Ordering::SeqCst) > 0 {
            let _g = self.m.lock().expect("stream gate poisoned");
            self.cv.notify_all();
        }
    }

    /// Unconditional wake — shutdown/poison paths. Tolerates a
    /// poisoned gate (the worker panic guard runs while unwinding and
    /// must not double-panic).
    pub(crate) fn notify_all(&self) {
        let _g = self.m.lock().ok();
        self.cv.notify_all();
    }
}
