//! Pipeline observability: cumulative counters and queue pressure,
//! snapshotted by [`StreamPipeline::stats`](crate::StreamPipeline::stats).

use std::time::Duration;

/// Cumulative counters for one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelStats {
    /// Symbols accepted onto the channel.
    pub submitted: u64,
    /// Symbols workers have finished (delivered or awaiting delivery).
    pub completed: u64,
    /// Symbols handed to the caller, in order.
    pub delivered: u64,
}

/// A point-in-time snapshot of a
/// [`StreamPipeline`](crate::StreamPipeline)'s counters.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStats {
    /// Total symbols accepted across all channels.
    pub submitted: u64,
    /// Total symbols workers have finished.
    pub completed: u64,
    /// Total symbols delivered to the caller.
    pub delivered: u64,
    /// Submissions refused with
    /// [`SubmitError::QueueFull`](crate::SubmitError::QueueFull) — the
    /// backpressure events observed so far.
    pub rejected: u64,
    /// Symbols currently waiting in the submission queue.
    pub in_queue: usize,
    /// Symbols currently being transformed by a worker.
    pub in_flight: usize,
    /// Capacity of the bounded submission queue.
    pub queue_capacity: usize,
    /// Deepest the submission queue has ever been — how close the
    /// stream has come to backpressure (equals `queue_capacity` once
    /// any submission has been refused or blocked).
    pub queue_high_water: usize,
    /// Transforms finished per worker, in spawn order — the pool's
    /// load balance.
    pub worker_transforms: Vec<u64>,
    /// Per-channel counters, in channel registration order.
    pub per_channel: Vec<ChannelStats>,
    /// Time since the pipeline was built.
    pub elapsed: Duration,
}

impl StreamStats {
    /// Sustained completion rate since the pipeline was built,
    /// symbols/sec (zero for an empty or instantaneous snapshot).
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.completed as f64 / secs
        } else {
            0.0
        }
    }
}

impl core::fmt::Display for StreamStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "submitted {} | completed {} ({:.0}/s) | delivered {} | rejected {} | \
             queue {}/{} (hwm {}) | workers {:?}",
            self.submitted,
            self.completed,
            self.throughput(),
            self.delivered,
            self.rejected,
            self.in_queue,
            self.queue_capacity,
            self.queue_high_water,
            self.worker_transforms,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StreamStats {
        StreamStats {
            submitted: 10,
            completed: 8,
            delivered: 6,
            rejected: 2,
            in_queue: 1,
            in_flight: 1,
            queue_capacity: 4,
            queue_high_water: 4,
            worker_transforms: vec![5, 3],
            per_channel: vec![ChannelStats { submitted: 10, completed: 8, delivered: 6 }],
            elapsed: Duration::from_secs(2),
        }
    }

    #[test]
    fn throughput_is_completions_over_elapsed() {
        let stats = sample();
        assert!((stats.throughput() - 4.0).abs() < 1e-12);
        let instant = StreamStats { elapsed: Duration::ZERO, ..sample() };
        assert_eq!(instant.throughput(), 0.0);
    }

    #[test]
    fn display_summarises_the_counters() {
        let line = sample().to_string();
        assert!(line.contains("submitted 10"));
        assert!(line.contains("rejected 2"));
        assert!(line.contains("queue 1/4 (hwm 4)"));
        assert!(line.contains("[5, 3]"));
    }
}
