//! Pipeline observability: cumulative counters, queue pressure, and —
//! when metrics are enabled — per-channel latency histograms with the
//! queue-wait / transform / reorder-park / deliver stage breakdown.
//! Snapshotted by
//! [`StreamPipeline::stats`](crate::StreamPipeline::stats).

use std::time::Duration;

use afft_obs::{fmt_ns, histogram_json, Histogram, Snapshot};

/// Cumulative counters for one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelStats {
    /// Symbols accepted onto the channel.
    pub submitted: u64,
    /// Symbols workers have finished (delivered or awaiting delivery).
    pub completed: u64,
    /// Symbols handed to the caller, in order.
    pub delivered: u64,
}

/// Latency histograms for one channel, decomposing a delivered
/// symbol's life (see [`afft_obs::Stage`]).
///
/// The histograms hold the *sampled* symbols — one in
/// [`DEFAULT_SAMPLE_EVERY`](crate::DEFAULT_SAMPLE_EVERY) by default,
/// every symbol under
/// [`StreamBuilder::sample_every(1)`](crate::StreamBuilder::sample_every)
/// — and the stage histograms are recorded at different points of a
/// symbol's life (queue-wait and transform when a worker finishes it,
/// reorder-park and latency when the caller pops it), so counts can
/// also differ across stages on a live snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelObs {
    /// Submission to worker claim: time spent in the bounded queue
    /// (plus time claimed-but-unstarted inside a worker batch).
    pub queue_wait: Histogram,
    /// The transform itself, engine `execute_into` plus the OFDM
    /// front-end when the channel runs one.
    pub transform: Histogram,
    /// Worker finish to caller pop: time parked in the reorder ring
    /// waiting for its turn (includes time the caller simply hadn't
    /// asked yet).
    pub reorder_park: Histogram,
    /// **The** per-channel latency: submission to in-order delivery,
    /// end to end.
    pub latency: Histogram,
}

impl ChannelObs {
    /// The stage histograms paired with their
    /// [`Stage`](afft_obs::Stage) names, in stage order.
    pub fn stages(&self) -> [(&'static str, &Histogram); 4] {
        [
            ("queue_wait", &self.queue_wait),
            ("transform", &self.transform),
            ("reorder_park", &self.reorder_park),
            ("deliver", &self.latency),
        ]
    }
}

/// Per-channel latency histograms for a whole pipeline — present on
/// [`StreamStats::obs`] when the pipeline was built with observability
/// enabled (the `AFFT_OBS` switch, or
/// [`StreamBuilder::observability`](crate::StreamBuilder::observability)).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamObs {
    /// Stage histograms per channel, in registration order.
    pub per_channel: Vec<ChannelObs>,
}

impl StreamObs {
    /// Flattens into a named [`Snapshot`] (`ch{i}/{stage}` series) for
    /// the generic exporters.
    pub fn snapshot(&self) -> Snapshot {
        let series = self
            .per_channel
            .iter()
            .enumerate()
            .flat_map(|(i, chan)| {
                chan.stages().map(|(stage, h)| (format!("ch{i}/{stage}"), h.clone()))
            })
            .collect();
        Snapshot::from_series(series)
    }

    /// Renders every channel as a JSON array of
    /// `{"channel":i,"latency":{..},"queue_wait":{..},...}` objects.
    pub fn to_json(&self) -> String {
        afft_obs::json::arr(self.per_channel.iter().enumerate().map(|(i, chan)| {
            let mut obj = afft_obs::json::Obj::new().num("channel", i as f64);
            for (stage, h) in chan.stages() {
                let key = if stage == "deliver" { "latency" } else { stage };
                obj = obj.raw(key, histogram_json(h));
            }
            obj.finish()
        }))
    }
}

impl core::fmt::Display for StreamObs {
    /// One row per channel: latency p50/p99 plus the stage p50s that
    /// explain where the time went.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "{:<7}  {:>9}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
            "channel", "samples", "p50", "p99", "queue p50", "xform p50", "park p50",
        )?;
        for (i, chan) in self.per_channel.iter().enumerate() {
            let q = |h: &Histogram, p: f64| h.percentile(p).map_or_else(|| "-".to_string(), fmt_ns);
            writeln!(
                f,
                "ch{i:<5}  {:>9}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
                chan.latency.count(),
                q(&chan.latency, 50.0),
                q(&chan.latency, 99.0),
                q(&chan.queue_wait, 50.0),
                q(&chan.transform, 50.0),
                q(&chan.reorder_park, 50.0),
            )?;
        }
        Ok(())
    }
}

/// A point-in-time snapshot of a
/// [`StreamPipeline`](crate::StreamPipeline)'s counters.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStats {
    /// Total symbols accepted across all channels.
    pub submitted: u64,
    /// Total symbols workers have finished.
    pub completed: u64,
    /// Total symbols delivered to the caller.
    pub delivered: u64,
    /// Submissions refused with
    /// [`SubmitError::QueueFull`](crate::SubmitError::QueueFull) — the
    /// backpressure events observed so far.
    pub rejected: u64,
    /// Symbols currently waiting in the submission queue.
    pub in_queue: usize,
    /// Symbols currently being transformed by a worker.
    pub in_flight: usize,
    /// Capacity of the bounded submission queue.
    pub queue_capacity: usize,
    /// Deepest the submission queue has ever been — how close the
    /// stream has come to backpressure (equals `queue_capacity` once
    /// any submission has been refused or blocked).
    pub queue_high_water: usize,
    /// Deepest each worker's local shard queue has ever been, in spawn
    /// order — where backpressure actually built up (the global
    /// `queue_high_water` says only that it did).
    pub shard_high_water: Vec<usize>,
    /// Transforms finished per worker, in spawn order — the pool's
    /// load balance.
    pub worker_transforms: Vec<u64>,
    /// Symbols each worker claimed from its own shard (the local-hit
    /// path), in spawn order.
    pub worker_local: Vec<u64>,
    /// Symbols each worker stole from other shards, in spawn order.
    pub worker_stolen: Vec<u64>,
    /// Steal operations (batches taken from a victim) per worker, in
    /// spawn order.
    pub worker_steals: Vec<u64>,
    /// Per-channel counters, in channel registration order.
    pub per_channel: Vec<ChannelStats>,
    /// Per-channel latency histograms, when the pipeline was built with
    /// observability on (`None` when metrics are disabled).
    pub obs: Option<StreamObs>,
    /// Time since the pipeline was built.
    pub elapsed: Duration,
}

impl StreamStats {
    /// Sustained completion rate since the pipeline was built,
    /// symbols/sec (zero for an empty or instantaneous snapshot).
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.completed as f64 / secs
        } else {
            0.0
        }
    }

    /// Each worker's share of finished transforms, in percent. All
    /// zeros (never `NaN`) before any symbol has completed.
    pub fn worker_shares(&self) -> Vec<f64> {
        let total: u64 = self.worker_transforms.iter().sum();
        self.worker_transforms
            .iter()
            .map(|&w| if total == 0 { 0.0 } else { w as f64 / total as f64 * 100.0 })
            .collect()
    }

    /// Total steal operations across the pool.
    pub fn steals(&self) -> u64 {
        self.worker_steals.iter().sum()
    }

    /// Fraction of claimed symbols that came from their home worker's
    /// own shard — the scheduler's affinity hit rate, `1.0` when no
    /// symbol has been claimed yet (an idle pipeline has missed
    /// nothing). Per-channel affinity, stealing only under imbalance,
    /// keeps this near 1 under balanced load.
    pub fn local_hit_ratio(&self) -> f64 {
        let local: u64 = self.worker_local.iter().sum();
        let stolen: u64 = self.worker_stolen.iter().sum();
        if local + stolen == 0 {
            1.0
        } else {
            local as f64 / (local + stolen) as f64
        }
    }

    /// Renders the snapshot as one JSON object carrying the same
    /// figures as the [`Display`](core::fmt::Display) line — global
    /// counters, queue pressure, and the scheduler block (per-shard
    /// high-water, per-worker local/stolen/steal counts, the local-hit
    /// ratio) — plus per-channel counters and, when metrics are on, the
    /// stage histograms of [`StreamObs::to_json`].
    pub fn to_json(&self) -> String {
        use afft_obs::json;
        let ints = |vals: &[u64]| json::arr(vals.iter().map(|v| json::num(*v as f64)));
        let mut obj = json::Obj::new()
            .num("submitted", self.submitted as f64)
            .num("completed", self.completed as f64)
            .num("delivered", self.delivered as f64)
            .num("rejected", self.rejected as f64)
            .num("in_queue", self.in_queue as f64)
            .num("in_flight", self.in_flight as f64)
            .num("queue_capacity", self.queue_capacity as f64)
            .num("queue_high_water", self.queue_high_water as f64)
            .raw(
                "scheduler",
                json::Obj::new()
                    .raw(
                        "shard_high_water",
                        json::arr(self.shard_high_water.iter().map(|v| json::num(*v as f64))),
                    )
                    .raw("worker_transforms", ints(&self.worker_transforms))
                    .raw("worker_local", ints(&self.worker_local))
                    .raw("worker_stolen", ints(&self.worker_stolen))
                    .raw("worker_steals", ints(&self.worker_steals))
                    .num("steals", self.steals() as f64)
                    .num("local_hit_ratio", self.local_hit_ratio())
                    .finish(),
            )
            .raw(
                "per_channel",
                json::arr(self.per_channel.iter().enumerate().map(|(i, c)| {
                    json::Obj::new()
                        .num("channel", i as f64)
                        .num("submitted", c.submitted as f64)
                        .num("completed", c.completed as f64)
                        .num("delivered", c.delivered as f64)
                        .finish()
                })),
            );
        if let Some(obs) = &self.obs {
            obj = obj.raw("channels", obs.to_json());
        }
        obj.finish()
    }
}

impl core::fmt::Display for StreamStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "submitted {} | completed {} ({:.0}/s) | delivered {} | rejected {} | \
             queue {}/{} (hwm {}) | workers [",
            self.submitted,
            self.completed,
            self.throughput(),
            self.delivered,
            self.rejected,
            self.in_queue,
            self.queue_capacity,
            self.queue_high_water,
        )?;
        // Guard the share computation against an idle pipeline: with no
        // finished transforms every share is 0%, never NaN%.
        for (i, (count, share)) in
            self.worker_transforms.iter().zip(self.worker_shares()).enumerate()
        {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{count} ({share:.0}%)")?;
        }
        write!(f, "] | shard hwm [")?;
        for (i, hwm) in self.shard_high_water.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{hwm}")?;
        }
        write!(f, "] | local-hit {:.0}% ({} steals)", self.local_hit_ratio() * 100.0, self.steals())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StreamStats {
        StreamStats {
            submitted: 10,
            completed: 8,
            delivered: 6,
            rejected: 2,
            in_queue: 1,
            in_flight: 1,
            queue_capacity: 4,
            queue_high_water: 4,
            shard_high_water: vec![3, 1],
            worker_transforms: vec![5, 3],
            worker_local: vec![5, 1],
            worker_stolen: vec![0, 2],
            worker_steals: vec![0, 1],
            per_channel: vec![ChannelStats { submitted: 10, completed: 8, delivered: 6 }],
            obs: None,
            elapsed: Duration::from_secs(2),
        }
    }

    #[test]
    fn throughput_is_completions_over_elapsed() {
        let stats = sample();
        assert!((stats.throughput() - 4.0).abs() < 1e-12);
        let instant = StreamStats { elapsed: Duration::ZERO, ..sample() };
        assert_eq!(instant.throughput(), 0.0);
    }

    #[test]
    fn display_summarises_the_counters() {
        let line = sample().to_string();
        assert!(line.contains("submitted 10"));
        assert!(line.contains("rejected 2"));
        assert!(line.contains("queue 1/4 (hwm 4)"));
        assert!(line.contains("[5 (62%), 3 (38%)]"), "{line}");
        assert!(line.contains("shard hwm [3, 1]"), "{line}");
        assert!(line.contains("local-hit 75% (1 steals)"), "{line}");
    }

    #[test]
    fn local_hit_ratio_counts_stolen_symbols_and_defaults_to_one() {
        let stats = sample();
        // 6 local + 2 stolen claims.
        assert!((stats.local_hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(stats.steals(), 1);
        let idle = StreamStats {
            worker_local: vec![0, 0],
            worker_stolen: vec![0, 0],
            worker_steals: vec![0, 0],
            ..sample()
        };
        assert_eq!(idle.local_hit_ratio(), 1.0, "nothing claimed, nothing missed");
    }

    #[test]
    fn to_json_schema_matches_the_display_figures() {
        // Regression: the JSON export and the Display line must carry
        // the same scheduler figures — a field renamed or dropped in
        // one place shows up here.
        let stats = sample();
        let doc = stats.to_json();
        assert!(doc.contains("\"submitted\":10"), "{doc}");
        assert!(doc.contains("\"queue_high_water\":4"), "{doc}");
        assert!(doc.contains("\"scheduler\":{"), "{doc}");
        assert!(doc.contains("\"shard_high_water\":[3,1]"), "{doc}");
        assert!(doc.contains("\"worker_local\":[5,1]"), "{doc}");
        assert!(doc.contains("\"worker_stolen\":[0,2]"), "{doc}");
        assert!(doc.contains("\"steals\":1"), "{doc}");
        assert!(doc.contains("\"local_hit_ratio\":0.75"), "{doc}");
        assert!(doc.contains("\"per_channel\":[{\"channel\":0"), "{doc}");
        assert!(!doc.contains("\"channels\""), "obs off leaves no histogram block: {doc}");
        let line = stats.to_string();
        assert!(line.contains("(hwm 4)") && doc.contains("\"queue_high_water\":4"));
        assert!(line.contains("local-hit 75%") && doc.contains("\"local_hit_ratio\":0.75"));
    }

    #[test]
    fn idle_pipeline_shows_zero_percent_not_nan() {
        // Regression: with completed == 0 the per-worker share is a
        // 0/0 — it must render as 0%, never NaN%.
        let idle = StreamStats {
            submitted: 0,
            completed: 0,
            delivered: 0,
            rejected: 0,
            in_queue: 0,
            in_flight: 0,
            worker_transforms: vec![0, 0, 0],
            per_channel: vec![ChannelStats { submitted: 0, completed: 0, delivered: 0 }],
            ..sample()
        };
        assert_eq!(idle.worker_shares(), vec![0.0, 0.0, 0.0]);
        let line = idle.to_string();
        assert!(!line.contains("NaN"), "{line}");
        assert!(line.contains("[0 (0%), 0 (0%), 0 (0%)]"), "{line}");
    }

    #[test]
    fn stream_obs_snapshot_json_and_table() {
        let mut latency = Histogram::new();
        latency.record_n(10_000, 100);
        let chan = ChannelObs {
            queue_wait: Histogram::new(),
            transform: Histogram::new(),
            reorder_park: Histogram::new(),
            latency,
        };
        let obs = StreamObs { per_channel: vec![chan] };
        let snap = obs.snapshot();
        assert_eq!(snap.series().len(), 4);
        assert!(snap.get("ch0/deliver").is_some());
        assert!(snap.get("ch0/queue_wait").is_some());
        let doc = obs.to_json();
        assert!(doc.contains("\"channel\":0"), "{doc}");
        assert!(doc.contains("\"latency\":{\"count\":100"), "{doc}");
        let table = obs.to_string();
        assert!(table.contains("ch0"), "{table}");
        assert!(table.contains("p99"), "{table}");
    }
}
