//! The worker side of the sharded scheduler: claim from the local
//! queue, steal when dry, transform with private engines, park
//! completions in the worker's own outbox.
//!
//! Steady state (balanced load) a worker's loop touches exactly two
//! mutexes, both effectively private: its own shard queue (shared only
//! with submitters routed to it by affinity) and its own completion
//! buffer (shared only with the draining caller). No mutex is ever
//! acquired by two workers on that path — stealing, the exception, is
//! by construction the *imbalance* path.
//!
//! # Stealing policy
//!
//! A worker steals only when its own queue is dry, scanning victims in
//! a per-worker pseudo-random rotation and taking the older half of
//! the first queue holding **at least two** jobs (capped at
//! [`WORKER_BATCH`]). The ≥ 2 floor keeps a singleton queued behind a
//! live worker where its engine scratch is warm — a lone symbol is
//! about to be claimed by its home worker anyway, and leaving it makes
//! channel→worker affinity deterministic under balanced load (the
//! property the affinity test asserts).

use afft_core::engine::FftEngine;
use afft_core::ofdm::Ofdm;
use afft_core::{Direction, FftError};
use afft_num::{Complex, C64};
use afft_obs::{ns_between, Counter, Stage};
use afft_planner::planner::take_engine;
use afft_planner::RegistryFactory;
use std::sync::atomic::Ordering;
use std::time::Instant;

use crate::pipeline::{ChannelOp, ChannelSpec, Completion, Shared, WORKER_BATCH};
use crate::shard::Job;

/// Per-worker scheduler counters ([`afft_obs::Counter`]s: relaxed
/// atomic adds, readable from any thread), surfaced through
/// [`StreamStats`](crate::StreamStats).
pub(crate) struct WorkerCounters {
    /// Symbols this worker transformed (local + stolen).
    pub(crate) transforms: Counter,
    /// Symbols claimed from the worker's own shard queue.
    pub(crate) local_symbols: Counter,
    /// Symbols this worker stole from other shards.
    pub(crate) stolen_symbols: Counter,
    /// Steal operations (batches taken from a victim).
    pub(crate) steals: Counter,
}

impl WorkerCounters {
    pub(crate) fn new() -> WorkerCounters {
        WorkerCounters {
            transforms: Counter::new(),
            local_symbols: Counter::new(),
            stolen_symbols: Counter::new(),
            steals: Counter::new(),
        }
    }
}

/// A worker's private per-channel execution front: the raw engine, or
/// an [`Ofdm`] modem wrapping it.
pub(crate) enum Front {
    Raw { engine: Box<dyn FftEngine>, dir: Direction },
    Modem { ofdm: Ofdm, modulate: bool },
}

impl Front {
    pub(crate) fn build(spec: &ChannelSpec, factory: RegistryFactory) -> Result<Front, FftError> {
        let engine = take_engine(factory, spec.n, &spec.engine)?;
        Ok(match spec.op {
            ChannelOp::Transform(dir) => Front::Raw { engine, dir },
            ChannelOp::Modulate { cp } => {
                Front::Modem { ofdm: Ofdm::with_engine(engine, cp)?, modulate: true }
            }
            ChannelOp::Demodulate { cp } => {
                Front::Modem { ofdm: Ofdm::with_engine(engine, cp)?, modulate: false }
            }
        })
    }

    fn run(&mut self, input: &[C64], output: &mut [C64]) -> Result<(), FftError> {
        match self {
            Front::Raw { engine, dir } => engine.execute_into(input, output, *dir),
            Front::Modem { ofdm, modulate: true } => ofdm.modulate_into(input, output),
            Front::Modem { ofdm, modulate: false } => ofdm.demodulate_into(input, output),
        }
    }

    fn cycles(&self) -> Option<u64> {
        match self {
            Front::Raw { engine, .. } => engine.cycles(),
            Front::Modem { ofdm, .. } => ofdm.engine().cycles(),
        }
    }
}

/// Marks the pipeline dead if its worker unwinds — a panicking backend
/// must wake (and fail) blocked `submit`/`recv` callers, not strand
/// them on a condvar waiting for jobs that will never be parked.
struct PanicGuard<'a>(&'a Shared);

impl Drop for PanicGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.worker_panicked.store(true, Ordering::SeqCst);
            self.0.closed.store(true, Ordering::SeqCst);
            // Tolerate poisoned shard mutexes: every other accessor
            // treats poison as fatal anyway, which surfaces the
            // failure too.
            for shard in &self.0.shards {
                let _g = shard.q.lock().ok();
                shard.work.notify_all();
            }
            self.0.space.notify_all();
            self.0.done.notify_all();
        }
    }
}

/// Claims up to [`WORKER_BATCH`] jobs from the worker's own shard —
/// the local-hit path. Returns the number claimed.
fn claim_local(shared: &Shared, idx: usize, batch: &mut Vec<Job>) -> usize {
    let mut q = shared.shards[idx].lock();
    while batch.len() < WORKER_BATCH {
        match q.queue.pop_front() {
            Some(job) => batch.push(job),
            None => break,
        }
    }
    let k = batch.len();
    if k > 0 {
        shared.budget.on_claim(k);
    }
    drop(q);
    if k > 0 {
        shared.wstats[idx].local_symbols.add(k as u64);
        wake_submitters(shared);
    }
    k
}

/// Steals the older half of the first victim queue holding ≥ 2 jobs,
/// scanning in a pseudo-random per-call rotation. Returns the number
/// stolen (0 when every other shard is dry or down to a singleton).
fn try_steal(shared: &Shared, idx: usize, seed: &mut u64, batch: &mut Vec<Job>) -> usize {
    let n = shared.shards.len();
    if n <= 1 {
        return 0;
    }
    // xorshift64 — no external randomness, just decorrelating which
    // victim concurrent thieves hit first.
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    let start = (*seed as usize) % n;
    for step in 0..n {
        let victim = (start + step) % n;
        if victim == idx {
            continue;
        }
        let mut q = shared.shards[victim].lock();
        let len = q.queue.len();
        if len < 2 {
            continue;
        }
        let take = (len / 2).min(WORKER_BATCH);
        for _ in 0..take {
            batch.push(q.queue.pop_front().expect("len checked"));
        }
        shared.budget.on_claim(take);
        drop(q);
        shared.wstats[idx].steals.incr();
        shared.wstats[idx].stolen_symbols.add(take as u64);
        wake_submitters(shared);
        return take;
    }
    0
}

/// Low-watermark backpressure release: wake blocked submitters only
/// once the global budget has drained to half capacity, so each wake
/// is amortised over ~depth/2 submissions. One atomic load each on the
/// uncontended path; the gate mutex only when someone is parked.
fn wake_submitters(shared: &Shared) {
    if shared.space.waiting.load(Ordering::SeqCst) > 0 && shared.budget.at_low_watermark() {
        shared.space.notify_if_waiting();
    }
}

/// Parks the worker on its own shard condvar until a submitter pushes
/// to it, pokes it to steal, or the pipeline closes.
fn park(shared: &Shared, idx: usize) {
    let shard = &shared.shards[idx];
    let mut q = shard.lock();
    if !q.queue.is_empty() || shared.closed.load(Ordering::SeqCst) {
        return;
    }
    q.idle = true;
    q.poked = false;
    shard.idle_hint.store(true, Ordering::SeqCst);
    while q.queue.is_empty() && !q.poked && !shared.closed.load(Ordering::SeqCst) {
        q = shard.work.wait(q).expect("stream shard poisoned");
    }
    q.idle = false;
    q.poked = false;
    shard.idle_hint.store(false, Ordering::SeqCst);
}

pub(crate) fn worker_loop(
    idx: usize,
    shared: &Shared,
    specs: &[ChannelSpec],
    factory: RegistryFactory,
) {
    let _guard = PanicGuard(shared);
    // This worker's metrics shard — recording is two relaxed atomic
    // adds, never a lock.
    let obs = shared.obs.as_ref().map(|o| o.recorder.handle(idx));
    // Private engines + scratch, warmed on a zero symbol per channel so
    // the first real symbol already runs the allocation-free path.
    let mut fronts: Vec<Front> = specs
        .iter()
        .map(|spec| {
            let mut front = Front::build(spec, factory)
                .expect("channel validated at build time but not constructible in worker");
            let input = vec![Complex::zero(); spec.input_len()];
            let mut output = vec![Complex::zero(); spec.output_len()];
            front.run(&input, &mut output).expect("warmup transform failed");
            front
        })
        .collect();

    // Job and completion staging reused across iterations: the worker
    // loop itself allocates nothing per symbol in steady state.
    let mut batch: Vec<Job> = Vec::with_capacity(WORKER_BATCH);
    let mut finished: Vec<crate::delivery::Parked> = Vec::with_capacity(WORKER_BATCH);
    let mut steal_seed = 0x9e37_79b9_7f4a_7c15u64 ^ ((idx as u64 + 1) << 17);

    loop {
        if claim_local(shared, idx, &mut batch) == 0 {
            try_steal(shared, idx, &mut steal_seed, &mut batch);
        }
        if batch.is_empty() {
            // Nothing local, nothing stealable. Exit once closed: this
            // worker's own queue is empty (checked under its lock) and
            // post-close nothing new can land there — every other
            // shard is drained by its own home worker, with thieves
            // helping while queues stay ≥ 2 deep.
            if shared.closed.load(Ordering::SeqCst) {
                let own_empty = shared.shards[idx].lock().queue.is_empty();
                if own_empty {
                    return;
                }
                continue;
            }
            park(shared, idx);
            continue;
        }

        // Only sampled jobs read the clock: two stamps bracketing the
        // transform. Queue-wait charges a job up to the moment its own
        // transform begins — including time spent claimed-but-behind
        // earlier jobs in this batch, since it was not transformable
        // anywhere else during that window.
        for mut job in batch.drain(..) {
            let front = &mut fronts[job.channel.index];
            let begin = if job.sampled { Instant::now() } else { shared.epoch };
            let error = front.run(&job.input, &mut job.output).err();
            let finished_at = match &obs {
                Some(rec) if job.sampled => {
                    let end = Instant::now();
                    let base = job.channel.index * Stage::COUNT;
                    rec.record(
                        base + Stage::QueueWait.index(),
                        ns_between(job.submitted_at, begin),
                    );
                    rec.record(base + Stage::Transform.index(), ns_between(begin, end));
                    end
                }
                _ => shared.epoch,
            };
            finished.push(crate::delivery::Parked {
                done: Completion {
                    channel: job.channel,
                    seq: job.seq,
                    input: job.input,
                    output: job.output,
                    cycles: front.cycles(),
                    error,
                },
                submitted_at: job.submitted_at,
                finished_at,
                sampled: job.sampled,
            });
        }

        // Park the batch in this worker's own outbox — never the
        // delivery lock, so completion traffic from N workers fans out
        // over N mutexes instead of serializing on one.
        let k = finished.len();
        shared.cbufs[idx].push_batch(&mut finished);
        shared.budget.in_flight.fetch_sub(k, Ordering::SeqCst);
        shared.wstats[idx].transforms.add(k as u64);
        shared.done.notify_if_waiting();
    }
}
