//! The streaming pipeline's two load-bearing guarantees, tested from
//! outside the crate:
//!
//! * **Ordering** (property test): per-channel completion delivery
//!   order matches submission order under a 4-worker pool, for
//!   randomized channel counts, symbol sizes, engines and stream
//!   lengths — and every delivered spectrum is bit-identical to the
//!   same engine run sequentially.
//! * **Backpressure** (regression test): `try_submit` surfaces
//!   [`SubmitError::QueueFull`] when the bounded queue is at capacity,
//!   hands the payload buffers back, and loses none of the work that
//!   was already accepted.

use afft_core::engine::EngineRegistry;
use afft_core::Direction;
use afft_num::{Complex, C64};
use afft_stream::{ChannelSpec, StreamPipeline, SubmitError};
use proptest::prelude::*;

/// A deterministic per-(channel, seq) symbol: xorshift-driven, so the
/// reference computation and the submission loop agree exactly.
fn symbol(n: usize, channel: usize, seq: u64) -> Vec<C64> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ ((channel as u64) << 32) ^ seq.wrapping_add(1);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let re = ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let im = ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
            Complex::new(re, im)
        })
        .collect()
}

/// Engines available at every power-of-two size >= 8.
const ENGINES: [&str; 4] = ["dft_naive", "radix2_dit", "radix2_dif", "mcfft"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Per-channel completion order matches submission order on a
    /// 4-worker pool, across randomized `(size, engine, length)`
    /// channel mixes, with round-robin interleaved submission and a
    /// deliberately small queue so blocking backpressure engages.
    #[test]
    fn delivery_order_matches_submission_order(
        channels in proptest::collection::vec(
            (3u32..=8, 0usize..ENGINES.len(), 1usize..=20, any::<bool>()),
            1..=3,
        ),
    ) {
        let mut builder = StreamPipeline::builder(EngineRegistry::standard)
            .workers(4)
            .queue_depth(3);
        let mut ids = Vec::new();
        for &(log_n, engine, count, inverse) in &channels {
            let n = 1usize << log_n;
            let dir = if inverse { Direction::Inverse } else { Direction::Forward };
            ids.push((builder.channel(ChannelSpec::transform(n, ENGINES[engine], dir)), count));
        }
        let pipeline = builder.build().expect("valid channels");

        // Sequential reference spectra, one private engine per channel
        // (the same construction path the workers use, so results must
        // be bit-identical, not merely close).
        let mut expected: Vec<Vec<Vec<C64>>> = Vec::new();
        for (idx, &(log_n, engine, count, inverse)) in channels.iter().enumerate() {
            let n = 1usize << log_n;
            let dir = if inverse { Direction::Inverse } else { Direction::Forward };
            let mut eng =
                EngineRegistry::standard(n).unwrap().take(ENGINES[engine]).expect("registered");
            expected.push(
                (0..count as u64).map(|s| eng.execute(&symbol(n, idx, s), dir).unwrap()).collect(),
            );
        }

        // Round-robin interleaved submission across channels: the worst
        // case for ordering, since neighbouring symbols of one channel
        // land on different workers.
        let mut next = vec![0u64; ids.len()];
        loop {
            let mut any = false;
            for (idx, &(ch, count)) in ids.iter().enumerate() {
                if next[idx] < count as u64 {
                    let n = pipeline.spec(ch).n;
                    let seq = pipeline
                        .submit(ch, symbol(n, idx, next[idx]), vec![Complex::zero(); n])
                        .expect("submit");
                    prop_assert_eq!(seq, next[idx], "sequence numbers count submissions");
                    next[idx] += 1;
                    any = true;
                }
            }
            if !any {
                break;
            }
        }

        // Drain every channel: strictly ascending seq, bit-identical
        // spectra, inputs handed back unchanged.
        for (idx, &(ch, count)) in ids.iter().enumerate() {
            let mut delivered = 0u64;
            while let Some(done) = pipeline.recv(ch) {
                prop_assert_eq!(done.seq, delivered, "channel {} delivered out of order", idx);
                prop_assert!(done.error.is_none());
                prop_assert_eq!(&done.output, &expected[idx][delivered as usize]);
                prop_assert_eq!(&done.input, &symbol(pipeline.spec(ch).n, idx, delivered));
                delivered += 1;
            }
            prop_assert_eq!(delivered, count as u64, "channel {} lost symbols", idx);
        }

        let (stats, leftover) = pipeline.shutdown();
        prop_assert!(leftover.is_empty());
        prop_assert_eq!(stats.submitted, stats.delivered);
        prop_assert_eq!(stats.rejected, 0, "blocking submit never rejects");
        let pooled: u64 = stats.worker_transforms.iter().sum();
        prop_assert_eq!(pooled, stats.completed);
    }
}

/// Regression: a full bounded queue surfaces `QueueFull` from
/// `try_submit` (returning the payload buffers), and every symbol that
/// *was* accepted before/around the rejections is still completed and
/// delivered in submission order — backpressure sheds new load, never
/// accepted load.
#[test]
fn queue_full_rejects_without_losing_accepted_work() {
    // One worker chewing O(N^2) naive DFTs at N=1024 drains the queue
    // far slower than the submission loop fills it, so capacity 2 is
    // reached deterministically within the first few attempts.
    let mut builder = StreamPipeline::builder(EngineRegistry::standard).workers(1).queue_depth(2);
    let ch = builder.channel(ChannelSpec::transform(1024, "dft_naive", Direction::Forward));
    let pipeline = builder.build().unwrap();

    let mut accepted = 0u64;
    let mut rejections = 0u64;
    let mut payload = (symbol(1024, 0, 0), vec![Complex::zero(); 1024]);
    for attempt in 0.. {
        assert!(attempt < 1_000, "queue never filled: {accepted} accepted, 0 rejected");
        assert!(accepted < 64, "worker drained an O(N^2) queue faster than the submit loop");
        match pipeline.try_submit(ch, payload.0, payload.1) {
            Ok(seq) => {
                assert_eq!(seq, accepted, "accepted submissions number densely");
                accepted += 1;
                payload = (symbol(1024, 0, accepted), vec![Complex::zero(); 1024]);
            }
            Err(SubmitError::QueueFull { input, output }) => {
                // The refusal hands the exact buffers back: nothing to
                // re-allocate, nothing lost.
                assert_eq!(input, symbol(1024, 0, accepted));
                assert_eq!(output.len(), 1024);
                rejections += 1;
                payload = (input, output);
                if rejections >= 4 {
                    break;
                }
            }
            Err(other) => panic!("unexpected refusal: {other}"),
        }
    }
    assert!(accepted >= 2, "capacity-2 queue accepts at least two symbols");

    // Every accepted symbol is delivered, in order, despite the
    // rejections interleaved among them.
    let mut delivered = 0u64;
    while let Some(done) = pipeline.recv(ch) {
        assert_eq!(done.seq, delivered);
        assert!(done.error.is_none());
        delivered += 1;
    }
    assert_eq!(delivered, accepted, "accepted work survives backpressure");

    let (stats, leftover) = pipeline.shutdown();
    assert!(leftover.is_empty());
    assert_eq!(stats.rejected, rejections);
    assert_eq!(stats.submitted, accepted);
    assert_eq!(stats.completed, accepted);
    assert_eq!(stats.queue_high_water, 2, "the queue reached its bound");
}
