//! Regression suite for deadline-bounded delivery (`recv_timeout`) and
//! the non-panicking poisoned-pipeline paths (`recv_checked` /
//! `submit_checked` / `SubmitError::Poisoned`) — the stream-API
//! contract the network server leans on: a handler must be able to time
//! out a stalled channel and degrade per-connection when a worker dies,
//! never unwind or hang.

use std::time::{Duration, Instant};

use afft_core::engine::{EngineRegistry, FftEngine};
use afft_core::{Direction, FftError};
use afft_num::{Complex, C64};
use afft_stream::{ChannelSpec, RecvError, StreamPipeline, SubmitError};

/// A backend whose latency the *payload* controls: each symbol sleeps
/// for `input[0].re` milliseconds before completing, and a negative
/// `input[0].re` panics the worker. Payload-driven (like the pipeline's
/// own `FragileEngine` tests) because `RegistryFactory` is a fn pointer
/// — no closures, so the test steers the engine through its inputs.
struct PacedEngine {
    n: usize,
}

impl FftEngine for PacedEngine {
    fn name(&self) -> &str {
        "paced"
    }

    fn len(&self) -> usize {
        self.n
    }

    fn execute_into(
        &mut self,
        input: &[C64],
        output: &mut [C64],
        _dir: Direction,
    ) -> Result<(), FftError> {
        let millis = input[0].re;
        assert!(millis >= 0.0, "paced engine told to explode");
        if millis > 0.0 {
            std::thread::sleep(Duration::from_millis(millis as u64));
        }
        for (slot, x) in output.iter_mut().zip(input) {
            *slot = *x;
        }
        Ok(())
    }

    fn traffic(&self) -> Option<afft_core::cached::MemTraffic> {
        None
    }
}

fn paced_registry(n: usize) -> Result<EngineRegistry, FftError> {
    let mut registry = EngineRegistry::new();
    registry.register(Box::new(PacedEngine { n }));
    Ok(registry)
}

fn paced_symbol(n: usize, millis: f64) -> Vec<C64> {
    let mut v = vec![Complex::zero(); n];
    v[0] = Complex::new(millis, 0.0);
    v
}

#[test]
fn recv_timeout_wakes_on_completion_before_the_deadline() {
    let mut builder = StreamPipeline::builder(paced_registry).workers(1).queue_depth(4);
    let ch = builder.channel(ChannelSpec::transform(16, "paced", Direction::Forward));
    let pipeline = builder.build().unwrap();

    // The symbol takes ~100 ms; the deadline is 10 s. A correct wait
    // parks and wakes on the completion notification, so the call
    // returns far before the deadline.
    pipeline.submit(ch, paced_symbol(16, 100.0), vec![Complex::zero(); 16]).unwrap();
    let began = Instant::now();
    let got = pipeline.recv_timeout(ch, Duration::from_secs(10)).unwrap();
    assert_eq!(got.expect("one symbol outstanding").seq, 0);
    assert!(began.elapsed() < Duration::from_secs(5), "woke on completion, not the deadline");
}

#[test]
fn recv_timeout_times_out_on_a_stalled_channel_without_losing_the_symbol() {
    let mut builder = StreamPipeline::builder(paced_registry).workers(1).queue_depth(4);
    let ch = builder.channel(ChannelSpec::transform(16, "paced", Direction::Forward));
    let pipeline = builder.build().unwrap();

    // ~700 ms of transform vs a 20 ms deadline: the receive must come
    // back with Timeout while the symbol is still in flight...
    pipeline.submit(ch, paced_symbol(16, 700.0), vec![Complex::zero(); 16]).unwrap();
    let err = pipeline.recv_timeout(ch, Duration::from_millis(20)).unwrap_err();
    assert_eq!(err, RecvError::Timeout);
    assert_eq!(pipeline.outstanding(ch), 1, "a timeout sheds the wait, not the work");

    // ...and a later (unbounded) checked receive still collects it.
    let got = pipeline.recv_checked(ch).unwrap().expect("symbol survived the timeout");
    assert_eq!(got.seq, 0);
    assert!(got.error.is_none());

    // Drained channel: both forms report None rather than waiting.
    assert!(pipeline.recv_timeout(ch, Duration::from_millis(20)).unwrap().is_none());
    assert!(pipeline.recv_checked(ch).unwrap().is_none());
}

#[test]
fn recv_timeout_returns_none_immediately_on_a_drained_channel() {
    let mut builder = StreamPipeline::builder(paced_registry).workers(1).queue_depth(4);
    let ch = builder.channel(ChannelSpec::transform(16, "paced", Direction::Forward));
    let pipeline = builder.build().unwrap();

    // Nothing outstanding: "drained" beats "deadline", immediately.
    let began = Instant::now();
    assert!(pipeline.recv_timeout(ch, Duration::from_secs(10)).unwrap().is_none());
    assert!(began.elapsed() < Duration::from_secs(5));
}

#[test]
fn checked_calls_surface_poisoning_as_errors_not_panics() {
    let mut builder = StreamPipeline::builder(paced_registry).workers(1).queue_depth(8);
    let ch = builder.channel(ChannelSpec::transform(16, "paced", Direction::Forward));
    let pipeline = builder.build().unwrap();

    // One good symbol completes and parks...
    pipeline.submit(ch, paced_symbol(16, 0.0), vec![Complex::zero(); 16]).unwrap();
    let got = pipeline.recv_checked(ch).unwrap().expect("good symbol");
    assert_eq!(got.seq, 0);

    // ...then another good symbol parks (poll stats — its drain pass
    // moves finished work into the reorder ring — so the symbol is
    // durably parked, not still staged in a worker batch that a
    // following poison symbol would take down with it)...
    pipeline.submit(ch, paced_symbol(16, 0.0), vec![Complex::zero(); 16]).unwrap();
    let began = Instant::now();
    while pipeline.stats().per_channel[0].completed < 2 {
        assert!(began.elapsed() < Duration::from_secs(10), "symbol 1 never completed");
        std::thread::sleep(Duration::from_millis(1));
    }

    // ...and a poison symbol kills the worker. The parked completion
    // must still be delivered before Poisoned is reported.
    pipeline.submit(ch, paced_symbol(16, -1.0), vec![Complex::zero(); 16]).unwrap();
    let parked = pipeline.recv_checked(ch).unwrap().expect("parked completion survives");
    assert_eq!(parked.seq, 1);
    assert_eq!(pipeline.recv_checked(ch).unwrap_err(), RecvError::Poisoned);
    assert!(pipeline.is_poisoned());
    assert!(pipeline.is_closed(), "a worker panic also closes the intake");

    // recv_timeout reports Poisoned too — not Timeout, and not a hang.
    assert_eq!(
        pipeline.recv_timeout(ch, Duration::from_secs(10)).unwrap_err(),
        RecvError::Poisoned
    );

    // Both checked submission forms refuse with Poisoned and hand the
    // payload buffers back.
    let err =
        pipeline.submit_checked(ch, paced_symbol(16, 0.0), vec![Complex::zero(); 16]).unwrap_err();
    assert!(matches!(err, SubmitError::Poisoned { .. }), "submit_checked: {err}");
    let (input, output) = err.into_buffers();
    assert_eq!((input.len(), output.len()), (16, 16));

    let err = pipeline.try_submit(ch, input, output).unwrap_err();
    assert!(matches!(err, SubmitError::Poisoned { .. }), "try_submit: {err}");
    let (input, output) = err.into_buffers();
    assert_eq!((input.len(), output.len()), (16, 16));

    // Drop (not shutdown): shutdown would panic on the dead worker's
    // join, which is exactly what a graceful owner avoids via
    // is_poisoned().
    drop(pipeline);
}
