//! The sharded scheduler's two load-bearing properties, tested from
//! outside the crate through the per-worker counters on
//! [`StreamStats`]:
//!
//! * **Work-stealing fairness**: one channel flooding its home worker
//!   with slow transforms cannot idle the rest of the pool — siblings
//!   steal from the backlog, and a probe channel homed elsewhere still
//!   makes progress while the flood is outstanding.
//! * **Affinity**: under balanced serial load (never more than one
//!   symbol in the pipeline) nothing is ever stolen, and every
//!   channel's transforms land exactly on its home worker.
//!
//! Both run under any pool size — including `AFFT_STREAM_WORKERS`
//! forcing 1 or 4 — because the stealing policy (only from queues
//! holding at least two jobs) makes the affinity outcome deterministic
//! and the fairness test skips itself on a 1-worker pool, where there
//! is nobody to steal.

use afft_core::engine::EngineRegistry;
use afft_core::Direction;
use afft_num::{Complex, C64};
use afft_stream::{ChannelSpec, StreamPipeline, StreamStats};

fn tagged(n: usize, tag: f64) -> Vec<C64> {
    (0..n).map(|i| Complex::new(tag, i as f64 / n as f64)).collect()
}

/// Per-worker claims must account for every finished transform, split
/// exactly into local hits and steals.
fn assert_claims_coherent(stats: &StreamStats) {
    for (w, &transforms) in stats.worker_transforms.iter().enumerate() {
        assert_eq!(
            transforms,
            stats.worker_local[w] + stats.worker_stolen[w],
            "worker {w}: transforms must equal local + stolen claims"
        );
    }
    assert_eq!(
        stats.worker_transforms.iter().sum::<u64>(),
        stats.completed,
        "every completed symbol was claimed by exactly one worker"
    );
}

#[test]
fn flooded_channel_is_drained_by_steals_while_others_progress() {
    let mut builder = StreamPipeline::builder(EngineRegistry::standard).workers(4).queue_depth(64);
    // The flood: a deliberately slow O(n²) engine, so its home worker
    // is saturated and a backlog forms on its shard.
    let flood = builder.channel(ChannelSpec::transform(1024, "dft_naive", Direction::Forward));
    // The probe: a fast channel homed on a different worker.
    let probe = builder.channel(ChannelSpec::transform(64, "radix2_dit", Direction::Forward));
    let pipeline = builder.build().unwrap();
    if pipeline.worker_count() < 2 {
        // One worker: nobody to steal from it. The policy under test
        // does not exist; the backpressure suites cover this shape.
        return;
    }
    assert_ne!(
        pipeline.home_worker(flood),
        pipeline.home_worker(probe),
        "test setup: the probe must not share the flood's home worker"
    );

    const FLOOD_SYMBOLS: u64 = 96;
    for s in 0..FLOOD_SYMBOLS {
        pipeline.submit(flood, tagged(1024, s as f64), vec![Complex::zero(); 1024]).unwrap();
    }
    pipeline.submit(probe, tagged(64, 0.5), vec![Complex::zero(); 64]).unwrap();

    // The probe completes while the flood is still being worked off —
    // its home worker is not wedged behind the flooded shard.
    let done = pipeline.recv(probe).expect("probe symbol outstanding");
    assert!(done.error.is_none());
    assert!(
        pipeline.outstanding(flood) > 0,
        "96 slow symbols cannot all finish before one fast probe returns"
    );

    // Drain the flood and check the scheduler counters: the backlog
    // was too deep for one worker, so siblings must have stolen, and
    // the stolen symbols ran off-home.
    while pipeline.recv(flood).is_some() {}
    let (stats, leftover) = pipeline.shutdown();
    assert!(leftover.is_empty());
    assert_eq!(stats.completed, FLOOD_SYMBOLS + 1);
    assert_claims_coherent(&stats);
    assert!(stats.steals() > 0, "a flooded shard must be stolen from: {stats}");
    assert!(stats.worker_stolen.iter().sum::<u64>() > 0);
    assert!(stats.local_hit_ratio() < 1.0);
    let active = stats.worker_transforms.iter().filter(|&&t| t > 0).count();
    assert!(active >= 2, "stealing must spread the flood over the pool: {stats}");
}

#[test]
fn balanced_serial_load_stays_on_home_workers_with_zero_steals() {
    let mut builder = StreamPipeline::builder(EngineRegistry::standard).workers(4).queue_depth(8);
    let channels: Vec<_> = (0..4)
        .map(|_| builder.channel(ChannelSpec::transform(64, "radix2_dit", Direction::Forward)))
        .collect();
    let pipeline = builder.build().unwrap();
    let workers = pipeline.worker_count();

    // Strictly serial traffic: at most one symbol in the pipeline at
    // any instant, so no shard queue ever holds two jobs and the
    // steal policy (victims need >= 2) can never fire — for ANY pool
    // size. Distinct per-channel symbol counts make misrouting show up
    // as a count mismatch, not a coincidence.
    let mut expected = vec![0u64; workers];
    for (i, &ch) in channels.iter().enumerate() {
        let symbols = (i as u64 + 1) * 5;
        expected[pipeline.home_worker(ch)] += symbols;
        for s in 0..symbols {
            pipeline.submit(ch, tagged(64, s as f64), vec![Complex::zero(); 64]).unwrap();
            let done = pipeline.recv(ch).expect("serial symbol outstanding");
            assert_eq!(done.seq, s);
            assert!(done.error.is_none());
        }
    }

    let (stats, leftover) = pipeline.shutdown();
    assert!(leftover.is_empty());
    assert_eq!(stats.completed, 5 + 10 + 15 + 20);
    assert_claims_coherent(&stats);
    assert_eq!(stats.steals(), 0, "serial load must never trigger a steal: {stats}");
    assert_eq!(stats.worker_stolen, vec![0; workers]);
    assert_eq!(stats.local_hit_ratio(), 1.0);
    assert_eq!(
        stats.worker_transforms, expected,
        "every channel's transforms must land on its home worker"
    );
    // The shard high-water marks tell the same story: load existed
    // only where channels are homed, and never deeper than one.
    assert_eq!(stats.shard_high_water.len(), workers);
    for (w, &hwm) in stats.shard_high_water.iter().enumerate() {
        if expected[w] > 0 {
            assert_eq!(hwm, 1, "serial load queues exactly one symbol at a time on worker {w}");
        } else {
            assert_eq!(hwm, 0, "worker {w} is nobody's home and saw no queue");
        }
    }
}
