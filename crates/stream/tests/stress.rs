//! Stress coverage for the streaming pipeline on a channel mix the
//! mixed-radix engine family makes possible: composite-`N` channels
//! (LTE-style sizes only `mixed_radix` serves) sharing one worker pool
//! with power-of-two channels.
//!
//! * **`try_submit` storm** — a non-blocking submission loop hammers a
//!   deliberately tiny queue across three channels; rejections are
//!   retried, opportunistic `try_recv` drains interleave, and at the
//!   end every accepted symbol must be delivered exactly once, in
//!   per-channel submission order, bit-identical to the same engine
//!   run sequentially.
//! * **shutdown under load** — the caller stops receiving entirely and
//!   shuts down while the queue is full of accepted work; the drain
//!   must complete every accepted symbol and hand the undelivered
//!   completions back in per-channel order. Accepted work is never
//!   lost.

use afft_core::engine::EngineRegistry;
use afft_core::Direction;
use afft_num::{Complex, C64};
use afft_stream::{ChannelSpec, StreamPipeline, SubmitError};

/// Deterministic per-(channel, seq) symbol, xorshift-driven, so the
/// sequential reference and the pipeline agree exactly.
fn symbol(n: usize, channel: usize, seq: u64) -> Vec<C64> {
    let mut state = 0xd1b5_4a32_d192_ed03u64 ^ ((channel as u64) << 40) ^ seq.wrapping_add(7);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let re = ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let im = ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
            Complex::new(re, im)
        })
        .collect()
}

/// The channel mix both tests run: one composite LTE-control-style
/// size that only `mixed_radix` serves, two power-of-two sizes on the
/// new plan-time-twiddle kernels, and one deliberately slow O(N^2)
/// naive channel (fewer symbols) that clogs the worker pool so the
/// storm reliably hits the queue bound.
const CHANNELS: [(usize, &str, u64); 4] = [
    (60, "mixed_radix", 48),
    (64, "radix4_dit", 48),
    (128, "split_radix", 48),
    (256, "dft_naive", 8),
];

/// Sequential reference spectra through the same engine-construction
/// path the workers use (bit-identical results expected, not close).
fn reference_spectra() -> Vec<Vec<Vec<C64>>> {
    CHANNELS
        .iter()
        .enumerate()
        .map(|(idx, &(n, engine, count))| {
            let mut eng = EngineRegistry::standard(n).unwrap().take(engine).expect("registered");
            (0..count)
                .map(|s| eng.execute(&symbol(n, idx, s), Direction::Forward).unwrap())
                .collect()
        })
        .collect()
}

#[test]
fn try_submit_storm_delivers_every_accepted_symbol_in_order() {
    let mut builder = StreamPipeline::builder(EngineRegistry::standard).workers(2).queue_depth(2); // tiny on purpose: the storm must hit QueueFull
    let ids: Vec<_> = CHANNELS
        .iter()
        .map(|&(n, engine, _)| {
            builder.channel(ChannelSpec::transform(n, engine, Direction::Forward))
        })
        .collect();
    let pipeline = builder.build().expect("valid channels");
    let expected = reference_spectra();

    let mut next = [0u64; CHANNELS.len()];
    let mut delivered = [0u64; CHANNELS.len()];
    let mut rejections = 0u64;
    // Storm: round-robin non-blocking submission, retrying rejected
    // payloads and opportunistically draining while the queue is full.
    while next.iter().zip(&CHANNELS).any(|(&s, &(_, _, count))| s < count) {
        for (idx, &ch) in ids.iter().enumerate() {
            if next[idx] >= CHANNELS[idx].2 {
                continue;
            }
            let n = CHANNELS[idx].0;
            let mut payload = (symbol(n, idx, next[idx]), vec![Complex::zero(); n]);
            loop {
                match pipeline.try_submit(ch, payload.0, payload.1) {
                    Ok(seq) => {
                        assert_eq!(seq, next[idx], "channel {idx} seq numbering");
                        next[idx] += 1;
                        break;
                    }
                    Err(SubmitError::QueueFull { input, output }) => {
                        rejections += 1;
                        payload = (input, output);
                        // Drain whatever is ready before retrying: the
                        // storm and the receive path interleave.
                        for (jdx, &cj) in ids.iter().enumerate() {
                            while let Some(done) = pipeline.try_recv(cj) {
                                assert_eq!(done.seq, delivered[jdx], "channel {jdx} order");
                                assert!(done.error.is_none());
                                assert_eq!(
                                    done.output, expected[jdx][done.seq as usize],
                                    "channel {jdx} seq {} spectrum",
                                    done.seq
                                );
                                delivered[jdx] += 1;
                            }
                        }
                    }
                    Err(other) => panic!("unexpected refusal: {other}"),
                }
            }
        }
    }
    assert!(rejections > 0, "a depth-2 queue under a 4-channel storm must reject");

    // Final drain: everything accepted arrives, in order, exactly once.
    let total: u64 = CHANNELS.iter().map(|&(_, _, count)| count).sum();
    for (idx, &ch) in ids.iter().enumerate() {
        while let Some(done) = pipeline.recv(ch) {
            assert_eq!(done.seq, delivered[idx], "channel {idx} order");
            assert!(done.error.is_none());
            assert_eq!(done.output, expected[idx][done.seq as usize]);
            delivered[idx] += 1;
        }
        assert_eq!(delivered[idx], CHANNELS[idx].2, "channel {idx} lost accepted work");
    }

    let (stats, leftover) = pipeline.shutdown();
    assert!(leftover.is_empty());
    assert_eq!(stats.submitted, total);
    assert_eq!(stats.completed, total);
    assert_eq!(stats.delivered, total);
    assert_eq!(stats.rejected, rejections);
    assert_eq!(stats.queue_high_water, 2, "the tiny queue reached its bound");
}

#[test]
fn shutdown_under_load_completes_and_returns_accepted_work_in_order() {
    let mut builder = StreamPipeline::builder(EngineRegistry::standard).workers(2).queue_depth(8);
    let ids: Vec<_> = CHANNELS
        .iter()
        .map(|&(n, engine, _)| {
            builder.channel(ChannelSpec::transform(n, engine, Direction::Forward))
        })
        .collect();
    let pipeline = builder.build().expect("valid channels");
    let expected = reference_spectra();

    // Blocking submission keeps the queue loaded; the caller never
    // receives a single completion.
    let max_count = CHANNELS.iter().map(|&(_, _, count)| count).max().unwrap();
    for seq in 0..max_count {
        for (idx, &ch) in ids.iter().enumerate() {
            if seq >= CHANNELS[idx].2 {
                continue;
            }
            let n = CHANNELS[idx].0;
            pipeline
                .submit(ch, symbol(n, idx, seq), vec![Complex::zero(); n])
                .expect("blocking submit");
        }
    }

    // Shut down with the pipeline still chewing: the drain must finish
    // every accepted symbol and surrender the completions (the drain
    // itself accounts them as delivered in the final stats).
    let total: u64 = CHANNELS.iter().map(|&(_, _, count)| count).sum();
    let (stats, leftover) = pipeline.shutdown();
    assert_eq!(stats.submitted, total);
    assert_eq!(stats.completed, total, "shutdown drains accepted work");
    assert_eq!(leftover.len(), total as usize, "every completion is handed back");

    // Leftover arrives per-channel in submission order, channels in
    // registration order — and every spectrum is still bit-identical
    // to the sequential reference.
    let mut cursor = 0usize;
    for (idx, &ch) in ids.iter().enumerate() {
        for seq in 0..CHANNELS[idx].2 {
            let done = &leftover[cursor];
            cursor += 1;
            assert_eq!(done.channel, ch, "channel block {idx}");
            assert_eq!(done.seq, seq, "channel {idx} order");
            assert!(done.error.is_none());
            assert_eq!(done.input, symbol(CHANNELS[idx].0, idx, seq));
            assert_eq!(done.output, expected[idx][seq as usize]);
        }
    }
}
