//! Drive the ASIP by hand: write assembly *text* using the custom FFT
//! instructions, assemble it, run it on the simulator, and inspect the
//! machine — the workflow a firmware engineer would use against the
//! real chip's toolchain.
//!
//! The program computes one 8-point FFT group entirely through the
//! custom unit, then the example disassembles itself and dumps the
//! results.
//!
//! ```text
//! cargo run --release --example asm_playground
//! ```

use afft::core::engine::EngineRegistry;
use afft::core::Direction;
use afft::isa::parser::assemble_text;
use afft::num::{Complex, Q15};
use afft::sim::{stage_input, Machine, MachineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-point FFT over the custom instructions, written as assembly
    // text. Input at address 0, output at address 256.
    let source = "
        # configure the AC unit: 8-point group (2^3)
        li    t0, 3
        mtfft t0, gsize
        li    t0, 6            # log2 N for the (unused) pre-rotation
        mtfft t0, nlog2

        # load 8 points = 4 LDIN beats from address 0
        li    s0, 0
        ldin  0(s0)
        ldin  8(s0)
        ldin  16(s0)
        ldin  24(s0)

        # three stages, one BUT4 module each
        li    t1, 1            # module index
        li    t2, 1
        but4  t2, t1           # stage 1
        li    t2, 2
        but4  t2, t1           # stage 2
        li    t2, 3
        but4  t2, t1           # stage 3

        # store 8 points = 4 STOUT beats to address 256
        li    s1, 256
        stout 0(s1)
        stout 8(s1)
        stout 16(s1)
        stout 24(s1)
        halt
    ";
    let program = assemble_text(source)?;
    println!("assembled {} instructions; disassembly:", program.len());
    println!("{}", program.disassemble());

    let mut m = Machine::new(MachineConfig::default());
    // Stage an impulse at position 1: spectrum = the twiddle spiral.
    let mut x = vec![Complex::<Q15>::zero(); 8];
    x[1] = Complex::new(Q15::from_f64(0.5), Q15::ZERO);
    stage_input(&mut m, 0, &x)?;
    m.load_program(program);
    let stats = m.run(10_000)?;

    println!("ran in {} cycles ({} instructions)", stats.cycles, stats.instrs);
    println!();

    // The reference spectrum comes from the engine registry: the naive
    // DFT backend over the same 8 staged points.
    let mut registry = EngineRegistry::standard(8)?;
    let golden = registry.get_mut("dft_naive").expect("reference backend");
    let exact_in: Vec<Complex<f64>> = x.iter().map(|q| q.to_c64()).collect();
    let want = golden.execute(&exact_in, Direction::Forward)?;

    println!("spectrum (hardware scales by 1/8):");
    let out = m.mem().read_complex_slice(256, 8)?;
    for (k, bin) in out.iter().enumerate() {
        let c = bin.to_c64() * 8.0;
        println!(
            "  X[{k}] = {:+.4} {:+.4}i   ({} says {:+.4} {:+.4}i)",
            c.re,
            c.im,
            golden.name(),
            want[k].re,
            want[k].im
        );
        assert!(c.dist(want[k]) < 0.01, "bin {k} deviates");
    }
    Ok(())
}
