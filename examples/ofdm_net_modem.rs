//! The OFDM modem of `ofdm_stream_server`, moved behind a real TCP
//! socket: an in-process `afft_net` server serves WiMAX-256 and
//! UWB-128 modulate/demodulate channels, and a client drives QPSK
//! frames through AWGN **over the wire** — the full path a deployed
//! modem daemon would run, HELLO handshake to graceful drain.
//!
//! Three acts:
//!
//! 1. **Modem traffic** — frames flow client → modulate channel →
//!    (AWGN applied client-side) → demodulate channel → client, and
//!    the hard-decision demap must come back bit-perfect;
//! 2. **Load shedding** — a flood against a deliberately shallow
//!    second server shows backpressure as a *protocol* feature:
//!    `RETRY_AFTER` frames instead of an unbounded queue, with every
//!    accepted frame still answered;
//! 3. **The admin endpoint** — one `STATS` frame returns the server's
//!    counters wrapped around the full pipeline snapshot as JSON.
//!
//! ```text
//! cargo run --release --example ofdm_net_modem
//! ```

use afft::core::engine::EngineRegistry;
use afft::core::Direction;
use afft::net::{NetClient, NetEvent, NetServer};
use afft::num::Complex;
use afft::planner::{Planner, Strategy};
use afft::stream::{ChannelOp, ChannelSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NOISE: f64 = 0.01;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2009);

    // Plan each symbol size once; the serving channels run the winners.
    let mut planner = Planner::new();
    let wimax_plan = planner.plan(256, Strategy::Estimate)?;
    let uwb_plan = planner.plan(128, Strategy::Estimate)?;

    let mut builder = NetServer::builder(EngineRegistry::standard).workers(2).queue_depth(32);
    let standards = [
        (
            "WiMAX-256",
            256usize,
            48u64,
            builder.channel(ChannelSpec::from_plan(&wimax_plan, ChannelOp::Modulate { cp: 64 })),
            builder.channel(ChannelSpec::from_plan(&wimax_plan, ChannelOp::Demodulate { cp: 64 })),
        ),
        (
            "UWB-128",
            128,
            60,
            builder.channel(ChannelSpec::from_plan(&uwb_plan, ChannelOp::Modulate { cp: 32 })),
            builder.channel(ChannelSpec::from_plan(&uwb_plan, ChannelOp::Demodulate { cp: 32 })),
        ),
    ];
    let server = builder.serve("127.0.0.1:0")?;
    println!(
        "afft_net modem up on {} (WiMAX on `{}`, UWB on `{}`)\n",
        server.local_addr(),
        wimax_plan.best().name,
        uwb_plan.best().name,
    );

    // Act 1: the modem loop, entirely over the socket. Every frame is
    // two round trips: subcarriers → time-domain samples (modulate),
    // noisy samples → bins (demodulate).
    let mut client = NetClient::connect(server.local_addr())?;
    let mut total_bits = 0usize;
    let mut bit_errors = 0usize;
    for &(name, n, frames, tx, rx) in &standards {
        let mut bits = vec![(false, false); n];
        let mut subcarriers = vec![Complex::zero(); n];
        for frame in 0..frames {
            for (slot, b) in subcarriers.iter_mut().zip(bits.iter_mut()) {
                *b = (rng.gen(), rng.gen());
                let re = if b.0 { 1.0 } else { -1.0 };
                let im = if b.1 { 1.0 } else { -1.0 };
                *slot = Complex::new(re, im) * std::f64::consts::FRAC_1_SQRT_2;
            }
            client.submit(tx, frame, &subcarriers)?;
            let NetEvent::Result { samples: mut airborne, .. } = client.recv_event()? else {
                return Err(format!("{name}: modulate frame {frame} refused").into());
            };
            for s in airborne.iter_mut() {
                *s = *s + Complex::new(rng.gen_range(-NOISE..NOISE), rng.gen_range(-NOISE..NOISE));
            }
            client.submit(rx, frame, &airborne)?;
            let NetEvent::Result { samples: bins, .. } = client.recv_event()? else {
                return Err(format!("{name}: demodulate frame {frame} refused").into());
            };
            for (bin, &sent) in bins.iter().zip(&bits) {
                total_bits += 2;
                bit_errors +=
                    usize::from((bin.re >= 0.0) != sent.0) + usize::from((bin.im >= 0.0) != sent.1);
            }
        }
        println!("{name}: {frames} frames round-tripped over TCP on channels {tx}/{rx}");
    }
    println!("demodulated: {bit_errors}/{total_bits} bit errors at noise {NOISE}");
    assert_eq!(bit_errors, 0, "QPSK at this SNR must demodulate cleanly");

    // Act 3 setup while the traffic is still on the books: the admin
    // stats frame, straight off the live server.
    client.request_stats(0)?;
    let NetEvent::Stats { json } = client.recv_event()? else {
        return Err("expected the stats document".into());
    };
    let head = json.split("\"pipeline\"").next().unwrap_or(&json);
    println!("\nadmin stats (server head): {head}...");
    drop(client);
    let stats = server.shutdown();
    println!("graceful drain: {} submitted, {} delivered\n", stats.submitted, stats.delivered);
    assert_eq!(stats.submitted, stats.delivered);

    // Act 2: load shedding as a protocol feature. One slow worker
    // behind a 2-deep budget; the flood must see RETRY_AFTER frames,
    // and the ledger must balance exactly.
    let mut builder =
        NetServer::builder(EngineRegistry::standard).workers(1).queue_depth(2).retry_after_ms(5);
    let ch = builder.channel(ChannelSpec::transform(512, "dft_naive", Direction::Forward));
    let shallow = builder.serve("127.0.0.1:0")?;
    let flood_client = NetClient::connect(shallow.local_addr())?;
    let (mut tx, mut rx) = flood_client.split();
    let flood = 24u64;
    let mut impulse = vec![Complex::zero(); 512];
    impulse[0] = Complex::new(1.0, 0.0);
    let writer = std::thread::spawn(move || {
        for seq in 0..flood {
            tx.submit(ch, seq, &impulse).expect("flood submit");
        }
    });
    let (mut accepted, mut shed) = (0u64, 0u64);
    for _ in 0..flood {
        match rx.recv_event()? {
            NetEvent::Result { .. } => accepted += 1,
            NetEvent::RetryAfter { millis, .. } => {
                shed += 1;
                debug_assert_eq!(millis, 5);
            }
            other => return Err(format!("flood: unexpected {other:?}").into()),
        }
    }
    writer.join().expect("flood writer");
    drop(rx);
    let flood_stats = shallow.shutdown();
    println!(
        "flood of {flood}: {accepted} accepted + {shed} shed (RETRY_AFTER) — \
         pipeline accepted {} and delivered {}",
        flood_stats.submitted, flood_stats.delivered,
    );
    assert!(shed >= 1, "a flood over a 2-deep queue must shed");
    assert_eq!(accepted + shed, flood);
    assert_eq!(flood_stats.submitted, accepted, "no accepted frame lost");
    Ok(())
}
