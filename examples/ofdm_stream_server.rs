//! A multi-channel OFDM "stream server": continuous WiMAX and UWB
//! symbol traffic through one persistent [`StreamPipeline`] — the
//! system shape the paper's introduction motivates (one FFT substrate
//! serving several scalable OFDM standards at once), run on the
//! workspace's streaming layer.
//!
//! Four channels share one worker pool: a modulator and a demodulator
//! for WiMAX 802.16 (256 subcarriers, 64-sample cyclic prefix) and for
//! MB-UWB 802.15.3a (128 subcarriers, 32-sample prefix). Each channel
//! runs the engine an autotuning plan picked for its size. Frames flow
//! transmitter → channel (AWGN) → receiver entirely through pipeline
//! submissions, and each standard's two payload buffers are threaded
//! through every completion back into the next submission — after
//! warmup the steady-state frame loop performs no per-symbol heap
//! allocation anywhere: not in the caller, not in the queue's reorder
//! ring, not in the workers.
//!
//! The end of the run demonstrates backpressure (`try_submit` refusing
//! with `QueueFull` on a deliberately tiny queue) and graceful
//! shutdown (close, drain, join — with the undelivered completions
//! handed back). Shutdown also prints the observability layer's
//! per-channel latency table — p50/p99 end-to-end plus the queue-wait
//! / transform / reorder-park stage breakdown (set `AFFT_OBS=0` to run
//! the server bare).
//!
//! ```text
//! cargo run --release --example ofdm_stream_server
//! ```

use afft::core::engine::EngineRegistry;
use afft::core::Direction;
use afft::num::{Complex, C64};
use afft::planner::{Planner, Strategy};
use afft::stream::{ChannelId, ChannelOp, ChannelSpec, StreamPipeline, SubmitError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One OFDM standard served by the pipeline.
struct Standard {
    name: &'static str,
    n: usize,
    cp: usize,
    frames: usize,
    tx: ChannelId,
    rx: ChannelId,
}

const NOISE: f64 = 0.01;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2009);

    // Plan each symbol size once; the pipeline channels run the
    // winners. (The software registry keeps the example fast — swap in
    // `registry_with_asip` and the 300 MHz ISS would win the ranking
    // and stream cycle counts through every completion.)
    let mut planner = Planner::new();
    let wimax_plan = planner.plan(256, Strategy::Estimate)?;
    let uwb_plan = planner.plan(128, Strategy::Estimate)?;

    let workers =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get).min(4);
    let mut builder = StreamPipeline::builder(EngineRegistry::standard).workers(workers);
    let mut standards = [
        Standard {
            name: "WiMAX-256",
            n: 256,
            cp: 64,
            frames: 96,
            tx: builder
                .channel(ChannelSpec::from_plan(&wimax_plan, ChannelOp::Modulate { cp: 64 })),
            rx: builder
                .channel(ChannelSpec::from_plan(&wimax_plan, ChannelOp::Demodulate { cp: 64 })),
        },
        Standard {
            name: "UWB-128",
            n: 128,
            cp: 32,
            frames: 120,
            tx: builder.channel(ChannelSpec::from_plan(&uwb_plan, ChannelOp::Modulate { cp: 32 })),
            rx: builder
                .channel(ChannelSpec::from_plan(&uwb_plan, ChannelOp::Demodulate { cp: 32 })),
        },
    ];
    let pipeline = builder.build()?;
    println!(
        "stream server up: {} workers, {} channels (WiMAX on `{}`, UWB on `{}`)\n",
        pipeline.worker_count(),
        pipeline.channel_count(),
        wimax_plan.best().name,
        uwb_plan.best().name,
    );

    let mut total_bits = 0usize;
    let mut bit_errors = 0usize;
    for standard in &mut standards {
        let Standard { name, n, cp, frames, tx, rx } = *standard;

        // Per-standard buffers, allocated once. From here on every
        // frame threads the same two payload buffers through the four
        // submissions (tx in/out -> rx in/out) and back out of the
        // completions — zero heap allocation per frame in this loop.
        let mut bits = vec![(false, false); n];
        let mut subcarriers = vec![Complex::zero(); n];
        let mut samples = vec![Complex::zero(); n + cp];
        for _ in 0..frames {
            // Transmit: QPSK-map fresh bits into the recycled
            // subcarrier buffer, modulate into the sample buffer.
            for (slot, b) in subcarriers.iter_mut().zip(bits.iter_mut()) {
                *b = (rng.gen(), rng.gen());
                let re = if b.0 { 1.0 } else { -1.0 };
                let im = if b.1 { 1.0 } else { -1.0 };
                *slot = Complex::new(re, im) * std::f64::consts::FRAC_1_SQRT_2;
            }
            pipeline
                .submit(tx, std::mem::take(&mut subcarriers), std::mem::take(&mut samples))
                .map_err(box_err)?;
            let sym = pipeline.recv(tx).expect("modulated frame");
            assert!(sym.error.is_none());

            // Channel: AWGN onto the modulated samples; the completion
            // handed both buffers back, so the receiver submission
            // reuses them (samples in, subcarrier bins out).
            let mut rx_samples = sym.output;
            for s in rx_samples.iter_mut() {
                *s = *s + Complex::new(rng.gen_range(-NOISE..NOISE), rng.gen_range(-NOISE..NOISE));
            }
            pipeline.submit(rx, rx_samples, sym.input).map_err(box_err)?;
            let bins = pipeline.recv(rx).expect("demodulated frame");
            assert!(bins.error.is_none());

            // Hard-decision demap straight off the bins, then recycle
            // both buffers into the next frame.
            for (bin, &sent) in bins.output.iter().zip(&bits) {
                total_bits += 2;
                bit_errors +=
                    usize::from((bin.re >= 0.0) != sent.0) + usize::from((bin.im >= 0.0) != sent.1);
            }
            subcarriers = bins.output;
            samples = bins.input;
        }
        println!(
            "{name}: {frames} frames round-tripped through channels {}/{}",
            tx.index(),
            rx.index()
        );
    }

    let stats = pipeline.stats();
    println!("\npipeline: {stats}");
    for (idx, chan) in stats.per_channel.iter().enumerate() {
        println!("  channel {idx}: submitted {} delivered {}", chan.submitted, chan.delivered);
    }
    println!("demodulated: {bit_errors}/{total_bits} bit errors at noise {NOISE}");
    assert_eq!(bit_errors, 0, "QPSK at this SNR must demodulate cleanly");
    let (final_stats, leftover) = pipeline.shutdown();
    assert!(leftover.is_empty());
    assert_eq!(final_stats.delivered, final_stats.submitted);

    // The shutdown report: per-channel latency percentiles with the
    // queue-wait / transform / reorder-park breakdown, recorded by the
    // observability layer (present unless the server ran AFFT_OBS=0).
    match &final_stats.obs {
        Some(obs) => println!("\nper-channel latency at shutdown:\n{obs}"),
        None => println!("\nper-channel latency at shutdown: disabled (AFFT_OBS=0)"),
    }

    // Backpressure, demonstrated: a tiny queue on a slow engine rejects
    // with QueueFull instead of blocking — and hands the buffers back.
    let mut builder = StreamPipeline::builder(EngineRegistry::standard).workers(1).queue_depth(2);
    let ch = builder.channel(ChannelSpec::transform(512, "dft_naive", Direction::Forward));
    let small = builder.build()?;
    let mut payload = (vec![Complex::new(1.0, 0.0); 512], vec![C64::zero(); 512]);
    let mut accepted = 0u64;
    let mut refused = 0u64;
    while refused < 3 {
        match small.try_submit(ch, payload.0, payload.1) {
            Ok(_) => {
                accepted += 1;
                payload = (vec![Complex::new(1.0, 0.0); 512], vec![C64::zero(); 512]);
            }
            Err(SubmitError::QueueFull { input, output }) => {
                refused += 1;
                payload = (input, output);
            }
            Err(other) => return Err(Box::new(other)),
        }
    }
    let mut delivered = 0u64;
    while small.recv(ch).is_some() {
        delivered += 1;
    }
    let (small_stats, _) = small.shutdown();
    println!(
        "\nbackpressure demo: accepted {accepted}, refused {refused} (QueueFull), \
         delivered {delivered} — no accepted work lost, {} rejections counted",
        small_stats.rejected
    );
    assert_eq!(delivered, accepted);
    Ok(())
}

/// `SubmitError` carries the payload buffers, which don't render
/// usefully; box the human-readable message instead.
fn box_err(e: SubmitError) -> Box<dyn std::error::Error> {
    e.to_string().into()
}
