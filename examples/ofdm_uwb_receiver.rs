//! The paper's motivating workload: the FFT stage of an MB-UWB
//! (802.15.3a-class) OFDM receiver — now with the receiver backend
//! *planned* instead of hard-coded.
//!
//! A transmitter modulates QPSK symbols onto 128 subcarriers through
//! the golden-model `Ofdm`; the channel adds noise; the receiver side
//! asks the autotuning planner for the fastest backend (measured over
//! the full registry, cycle-accurate ASIP included — it wins on
//! modeled hardware time). The plan is replayed from the per-machine
//! wisdom file when one exists (run the `wimax_scalable` example or
//! the `planner` bench bin first to warm it), the demodulator runs on
//! the planned engine via `Ofdm::with_engine`, and the whole frame is
//! also pushed through the threaded `BatchExecutor` to check the pool
//! is bit-identical to sequential execution.
//!
//! ```text
//! cargo run --release --example ofdm_uwb_receiver
//! ```

use afft::asip::engine::registry_with_asip;
use afft::core::ofdm::{qpsk_demap, qpsk_map, Ofdm};
use afft::core::Direction;
use afft::num::{Complex, C64};
use afft::planner::{Planner, Strategy, Wisdom};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 128; // MB-OFDM UWB FFT size
const CP: usize = 32; // cyclic prefix
const SYMBOLS: usize = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2009);

    // Plan the receiver FFT: every backend in the registry competes,
    // the cycle-accurate ISS by its modeled cycles. Wisdom makes the
    // measurement a one-time cost per machine.
    let wisdom_path = Wisdom::default_path();
    let mut planner =
        Planner::with_factory(registry_with_asip).with_wisdom(Wisdom::load(&wisdom_path)?);
    let plan = planner.plan(N, Strategy::Measure)?;
    println!(
        "planner: receiver FFT -> {} ({}; {} backends ranked)",
        plan.best().name,
        if plan.from_wisdom { "replayed from wisdom" } else { "measured now" },
        plan.ranking.len(),
    );

    // Transmitter on the golden model; receiver on the planned engine.
    let mut tx_ofdm = Ofdm::new(N, CP)?;
    let mut rx_ofdm = Ofdm::with_engine(planner.engine(&plan)?, CP)?;

    let mut tx_bits: Vec<Vec<(bool, bool)>> = Vec::with_capacity(SYMBOLS);
    let mut rx_frames: Vec<Vec<C64>> = Vec::with_capacity(SYMBOLS);
    for _ in 0..SYMBOLS {
        let bits: Vec<(bool, bool)> = (0..N).map(|_| (rng.gen(), rng.gen())).collect();
        let tx = tx_ofdm.modulate(&qpsk_map(&bits))?;
        // Channel: AWGN at a comfortable SNR.
        let rx: Vec<C64> = tx
            .iter()
            .map(|&c| c + Complex::new(rng.gen_range(-0.01..0.01), rng.gen_range(-0.01..0.01)))
            .collect();
        tx_bits.push(bits);
        rx_frames.push(rx);
    }

    // Receiver: demodulate every symbol on the planned backend. The
    // spectra batch is preallocated once and each symbol demodulates
    // through the zero-allocation `demodulate_into` path.
    let mut total_cycles = 0u64;
    let mut bit_errors = 0usize;
    let mut total_bits = 0usize;
    let mut spectra: Vec<Vec<C64>> = vec![vec![C64::zero(); N]; SYMBOLS];
    for ((bits, frame), bins) in tx_bits.iter().zip(&rx_frames).zip(spectra.iter_mut()) {
        rx_ofdm.demodulate_into(frame, bins)?;
        // Only cycle-accurate backends report cycles; the f64 models
        // demodulate identically but have no cost observable.
        total_cycles += rx_ofdm.engine().cycles().unwrap_or(0);
        for (decided, &sent) in qpsk_demap(bins).iter().zip(bits) {
            total_bits += 2;
            bit_errors += usize::from(decided.0 != sent.0) + usize::from(decided.1 != sent.1);
        }
    }

    // The same frame through the batched executor, threaded, into a
    // caller-owned preallocated output batch: the pool shards symbols
    // across workers, each writing straight into its shard, and must
    // be bit-identical to the per-symbol demodulation above.
    let mut executor = planner.executor(&plan)?;
    let batch: Vec<Vec<C64>> = rx_frames.iter().map(|f| f[CP..].to_vec()).collect();
    let mut threaded = executor.alloc_output(batch.len());
    executor.execute_threaded_into(&batch, &mut threaded, Direction::Forward, 4)?;
    assert_eq!(threaded, spectra, "threaded batch must match per-symbol demodulation");
    println!("batch: {SYMBOLS} symbols on 4 workers, bit-identical to sequential");

    println!();
    println!("demodulated {SYMBOLS} OFDM symbols: {bit_errors}/{total_bits} bit errors");
    if total_cycles > 0 {
        let cycles_per_symbol = total_cycles as f64 / SYMBOLS as f64;
        let us_per_symbol = cycles_per_symbol / 300.0;
        println!(
            "avg {cycles_per_symbol:.0} cycles per 128-point FFT ({us_per_symbol:.2} us at 300 MHz)"
        );
        println!(
            "per-core sample rate: {:.1} Msamples/s (UWB device target: 409.6 Ms/s aggregate)",
            N as f64 / us_per_symbol
        );
    } else {
        println!("(backend {} has no cycle model; cost table skipped)", rx_ofdm.engine().name());
    }
    assert_eq!(bit_errors, 0, "QPSK at this SNR must demodulate cleanly");

    // Remember what we learned for the next process.
    planner.wisdom().store(&wisdom_path)?;
    println!("wisdom: {} plans cached at {}", planner.wisdom().len(), wisdom_path.display());
    Ok(())
}
