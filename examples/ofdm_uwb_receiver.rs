//! The paper's motivating workload: the FFT stage of an MB-UWB
//! (802.15.3a-class) OFDM receiver.
//!
//! A transmitter IFFTs QPSK symbols onto 128 subcarriers; the channel
//! adds noise; the receiver runs the 128-point forward FFT **on the
//! simulated ASIP** and demaps the constellation. The example then
//! checks the demodulated bits and reports whether the simulated
//! throughput meets the UWB real-time budget the paper quotes
//! (409.6 Msamples/s across the device; here we report per-core
//! numbers).
//!
//! ```text
//! cargo run --release --example ofdm_uwb_receiver
//! ```

use afft::asip::runner::{quantize_input, run_array_fft, AsipConfig};
use afft::core::{ArrayFft, Direction};
use afft::num::{Complex, C64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 128; // MB-OFDM UWB FFT size
const SYMBOLS: usize = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2009);
    let ifft: ArrayFft<f64> = ArrayFft::new(N)?;

    let mut total_cycles = 0u64;
    let mut bit_errors = 0usize;
    let mut total_bits = 0usize;

    for sym in 0..SYMBOLS {
        // Transmitter: QPSK on every subcarrier, IFFT to time domain.
        let tx_bits: Vec<(bool, bool)> = (0..N).map(|_| (rng.gen(), rng.gen())).collect();
        let freq: Vec<C64> = tx_bits
            .iter()
            .map(|&(b0, b1)| {
                let re = if b0 { 1.0 } else { -1.0 };
                let im = if b1 { 1.0 } else { -1.0 };
                Complex::new(re, im) * std::f64::consts::FRAC_1_SQRT_2
            })
            .collect();
        let time: Vec<C64> =
            ifft.process(&freq, Direction::Inverse)?.iter().map(|&c| c * (1.0 / N as f64)).collect();

        // Channel: AWGN at a comfortable SNR.
        let rx: Vec<C64> = time
            .iter()
            .map(|&c| {
                c + Complex::new(rng.gen_range(-0.01..0.01), rng.gen_range(-0.01..0.01))
            })
            .collect();

        // Receiver: forward FFT on the ASIP (16-bit datapath).
        let input = quantize_input(&rx, 1.0);
        let run = run_array_fft(&input, Direction::Forward, &AsipConfig::default())?;
        total_cycles += run.stats.cycles;

        // Demap.
        for (k, &(b0, b1)) in tx_bits.iter().enumerate() {
            let bin = run.output[k].to_c64();
            let (d0, d1) = (bin.re >= 0.0, bin.im >= 0.0);
            total_bits += 2;
            bit_errors += usize::from(d0 != b0) + usize::from(d1 != b1);
        }
        if sym == 0 {
            println!(
                "symbol 0: {} cycles, {} loads+stores to main memory",
                run.stats.cycles,
                run.stats.table_loads() + run.stats.table_stores()
            );
        }
    }

    let cycles_per_symbol = total_cycles as f64 / SYMBOLS as f64;
    let us_per_symbol = cycles_per_symbol / 300.0;
    println!();
    println!("demodulated {SYMBOLS} OFDM symbols: {bit_errors}/{total_bits} bit errors");
    println!("avg {cycles_per_symbol:.0} cycles per 128-point FFT ({us_per_symbol:.2} us at 300 MHz)");
    println!(
        "per-core sample rate: {:.1} Msamples/s (UWB device target: 409.6 Ms/s aggregate)",
        N as f64 / us_per_symbol
    );
    assert_eq!(bit_errors, 0, "QPSK at this SNR must demodulate cleanly");
    Ok(())
}
