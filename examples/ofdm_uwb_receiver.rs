//! The paper's motivating workload: the FFT stage of an MB-UWB
//! (802.15.3a-class) OFDM receiver.
//!
//! A transmitter IFFTs QPSK symbols onto 128 subcarriers; the channel
//! adds noise; the receiver runs the 128-point forward FFT **on the
//! simulated ASIP**, selected from the engine registry by name — swap
//! the name to demodulate on any other backend. The example checks the
//! demodulated bits and reports whether the simulated throughput meets
//! the UWB real-time budget the paper quotes (409.6 Msamples/s across
//! the device; here we report per-core numbers).
//!
//! ```text
//! cargo run --release --example ofdm_uwb_receiver
//! ```

use afft::asip::engine::registry_with_asip;
use afft::core::Direction;
use afft::num::{Complex, C64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 128; // MB-OFDM UWB FFT size
const SYMBOLS: usize = 8;

/// The backend the receiver runs on. Any registered engine name works;
/// the cycle-accurate ASIP is the paper's configuration.
const RECEIVER_BACKEND: &str = "asip_iss";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2009);
    let registry = registry_with_asip(N)?;
    let ifft = registry.get("array_fft").expect("transmitter backend");
    let rx_fft = registry.get(RECEIVER_BACKEND).expect("receiver backend");

    let mut total_cycles = 0u64;
    let mut bit_errors = 0usize;
    let mut total_bits = 0usize;

    for sym in 0..SYMBOLS {
        // Transmitter: QPSK on every subcarrier, IFFT to time domain.
        let tx_bits: Vec<(bool, bool)> = (0..N).map(|_| (rng.gen(), rng.gen())).collect();
        let freq: Vec<C64> = tx_bits
            .iter()
            .map(|&(b0, b1)| {
                let re = if b0 { 1.0 } else { -1.0 };
                let im = if b1 { 1.0 } else { -1.0 };
                Complex::new(re, im) * std::f64::consts::FRAC_1_SQRT_2
            })
            .collect();
        let time: Vec<C64> = ifft
            .execute(&freq, Direction::Inverse)?
            .iter()
            .map(|&c| c * (1.0 / N as f64))
            .collect();

        // Channel: AWGN at a comfortable SNR.
        let rx: Vec<C64> = time
            .iter()
            .map(|&c| c + Complex::new(rng.gen_range(-0.01..0.01), rng.gen_range(-0.01..0.01)))
            .collect();

        // Receiver: forward FFT on the selected backend (the 16-bit
        // ASIP datapath behind the same trait as the f64 models).
        let bins = rx_fft.execute(&rx, Direction::Forward)?;
        // Only cycle-accurate backends report cycles; the f64 models
        // demodulate identically but have no cost observable.
        total_cycles += rx_fft.cycles().unwrap_or(0);

        // Demap.
        for (k, &(b0, b1)) in tx_bits.iter().enumerate() {
            let (d0, d1) = (bins[k].re >= 0.0, bins[k].im >= 0.0);
            total_bits += 2;
            bit_errors += usize::from(d0 != b0) + usize::from(d1 != b1);
        }
        if sym == 0 {
            let traffic =
                rx_fft.traffic().map_or("unmodelled".to_string(), |t| t.total().to_string());
            let cycles = rx_fft.cycles().map_or("-".to_string(), |c| c.to_string());
            println!(
                "symbol 0 on {}: {} cycles, {} points moved to/from main memory",
                rx_fft.name(),
                cycles,
                traffic
            );
        }
    }

    println!();
    println!("demodulated {SYMBOLS} OFDM symbols: {bit_errors}/{total_bits} bit errors");
    if total_cycles > 0 {
        let cycles_per_symbol = total_cycles as f64 / SYMBOLS as f64;
        let us_per_symbol = cycles_per_symbol / 300.0;
        println!(
            "avg {cycles_per_symbol:.0} cycles per 128-point FFT ({us_per_symbol:.2} us at 300 MHz)"
        );
        println!(
            "per-core sample rate: {:.1} Msamples/s (UWB device target: 409.6 Ms/s aggregate)",
            N as f64 / us_per_symbol
        );
    } else {
        println!("(backend {} has no cycle model; cost table skipped)", rx_fft.name());
    }
    assert_eq!(bit_errors, 0, "QPSK at this SNR must demodulate cleanly");
    Ok(())
}
