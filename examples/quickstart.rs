//! Quickstart: plan an array FFT, transform a signal on the golden
//! model, then run the *same* transform cycle-accurately on the ASIP
//! simulator and compare results and cost.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use afft::asip::runner::{quantize_input, run_array_fft, AsipConfig};
use afft::core::{ArrayFft, Direction, Scaling};
use afft::num::Complex;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 256;

    // A test signal: two tones plus a DC offset.
    let signal: Vec<Complex<f64>> = (0..n)
        .map(|m| {
            let t = m as f64 / n as f64;
            let tone1 = (2.0 * std::f64::consts::PI * 10.0 * t).cos();
            let tone2 = 0.5 * (2.0 * std::f64::consts::PI * 40.0 * t).sin();
            Complex::new(0.2 + 0.4 * tone1 + 0.3 * tone2, 0.0)
        })
        .collect();

    // 1. Software golden model (f64, exact amplitudes).
    let fft: ArrayFft<f64> = ArrayFft::new(n)?;
    let spectrum = fft.process(&signal, Direction::Forward)?;
    println!("golden model: |X[k]| peaks");
    for (k, bin) in spectrum.iter().enumerate().take(n / 2) {
        let mag = bin.abs() / n as f64;
        if mag > 0.05 {
            println!("  bin {k:>3}: {mag:.3}");
        }
    }

    // 2. The same transform on the cycle-accurate ASIP.
    let input = quantize_input(&signal, 1.0);
    let run = run_array_fft(&input, Direction::Forward, &AsipConfig::default())?;
    println!();
    println!(
        "ASIP simulation: {} cycles, {} BUT4, {} LDIN, {} STOUT, {} D-cache misses",
        run.stats.cycles,
        run.stats.but4,
        run.stats.ldin,
        run.stats.stout,
        run.stats.cache_misses()
    );
    println!(
        "throughput at 300 MHz: {:.1} Mbps ({:.2} us per transform)",
        run.stats.throughput_mbps(n, 300.0),
        run.stats.cycles as f64 / 300.0
    );

    // 3. The fixed-point hardware tracks the golden model (output is
    // scaled by 1/N by the per-stage halving).
    let mut worst = 0.0f64;
    for (hw, exact) in run.output.iter().zip(&spectrum) {
        let err = hw.to_c64().dist(*exact * (1.0 / n as f64));
        worst = worst.max(err);
    }
    println!("max |hardware - golden/N| = {worst:.2e} (16-bit datapath)");

    // 4. The fixed-point ASIP output equals the Q15 golden model
    // *bit-exactly*.
    let golden_q15 = ArrayFft::<afft::num::Q15>::with_scaling(n, Scaling::HalfPerStage)?
        .process(&input, Direction::Forward)?;
    assert_eq!(run.output, golden_q15, "ISS must match the Q15 golden model bit-exactly");
    println!("ISS output == Q15 golden model: bit-exact");
    Ok(())
}
