//! Quickstart: plan the backend registry once, then run the *same*
//! transform on every engine — golden models, prior-art structures and
//! the cycle-accurate ASIP simulator — through one polymorphic
//! interface, comparing results and cost.
//!
//! The sweep demonstrates the zero-allocation idiom: one spectrum
//! buffer is allocated up front and every engine executes into it via
//! `FftEngine::execute_into`, reusing its own plan-owned scratch — no
//! heap work per transform anywhere in the loop.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use afft::asip::engine::registry_with_asip;
use afft::core::reference::max_error;
use afft::core::Direction;
use afft::num::Complex;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 256;

    // A test signal: two tones plus a DC offset.
    let signal: Vec<Complex<f64>> = (0..n)
        .map(|m| {
            let t = m as f64 / n as f64;
            let tone1 = (2.0 * std::f64::consts::PI * 10.0 * t).cos();
            let tone2 = 0.5 * (2.0 * std::f64::consts::PI * 40.0 * t).sin();
            Complex::new(0.2 + 0.4 * tone1 + 0.3 * tone2, 0.0)
        })
        .collect();

    // One registry, every backend: software models plus the simulated
    // hardware, all behind the `FftEngine` execution contract.
    let mut registry = registry_with_asip(n)?;
    println!("registry at N = {n}: {:?}", registry.names());
    println!();

    // The golden reference the others are judged against.
    let golden =
        registry.get_mut("dft_naive").expect("golden").execute(&signal, Direction::Forward)?;
    let peak = golden.iter().map(|c| c.abs()).fold(0.0f64, f64::max);

    println!("tone bins from the golden model (|X[k]|/N > 0.05):");
    for (k, bin) in golden.iter().enumerate().take(n / 2) {
        let mag = bin.abs() / n as f64;
        if mag > 0.05 {
            println!("  bin {k:>3}: {mag:.3}");
        }
    }
    println!();

    println!(
        "{:<12} {:>12} {:>14} {:>10} {:>10}",
        "engine", "rel error", "traffic (pts)", "cycles", "ok"
    );
    // Buffer reuse: allocate the spectrum once, outside the loop, and
    // let every backend write into it (`execute_into` is the engine
    // primitive; `execute` is a convenience wrapper that allocates).
    let mut spectrum = vec![Complex::zero(); n];
    for engine in registry.engines_mut() {
        // The golden reference already ran; don't pay its O(N^2) twice.
        if engine.name() == "dft_naive" {
            spectrum.copy_from_slice(&golden);
        } else {
            engine.execute_into(&signal, &mut spectrum, Direction::Forward)?;
        }
        let err = max_error(&spectrum, &golden) / peak;
        let traffic = engine.traffic().map_or("-".to_string(), |t| t.total().to_string());
        let cycles = engine.cycles().map_or("-".to_string(), |c| c.to_string());
        let ok = err < engine.tolerance();
        println!("{:<12} {err:>12.2e} {traffic:>14} {cycles:>10} {ok:>10}", engine.name());
        assert!(ok, "{} deviated beyond its tolerance", engine.name());
    }
    println!();

    // The cycle-accurate backend also reports the paper's throughput.
    let asip = registry.get("asip_iss").expect("asip backend");
    let cycles = asip.cycles().expect("ran above");
    println!(
        "ASIP: {cycles} cycles -> {:.1} Mbps at 300 MHz ({:.2} us per transform)",
        afft::sim::throughput_mbps(n, cycles, 300.0),
        cycles as f64 / 300.0
    );
    Ok(())
}
