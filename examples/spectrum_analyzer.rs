//! A real-input spectrum analyser on the array FFT: windowing, the
//! packed real FFT, and a text spectrogram — the classic "second
//! application" for an FFT engine beyond OFDM. The packed real path is
//! cross-checked bin-for-bin against the complex backends in the
//! engine registry.
//!
//! ```text
//! cargo run --release --example spectrum_analyzer
//! ```

use afft::core::engine::EngineRegistry;
use afft::core::realfft::RealFft;
use afft::core::window::Window;
use afft::core::Direction;
use afft::num::Complex;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let len = 512; // real samples per frame
    let fs = 48_000.0; // Hz
    let fft = RealFft::new(len)?;
    let window = Window::Hann;

    // A test signal: 3 kHz tone, a weaker 9.7 kHz tone (off-bin), and
    // a little noise.
    let mut seed = 0x12345u32;
    let mut noise = move || {
        seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
        (f64::from(seed >> 8) / f64::from(1u32 << 24) - 0.5) * 0.02
    };
    let signal: Vec<f64> = (0..len)
        .map(|n| {
            let t = n as f64 / fs;
            (2.0 * std::f64::consts::PI * 3000.0 * t).sin()
                + 0.2 * (2.0 * std::f64::consts::PI * 9700.0 * t).sin()
                + noise()
        })
        .collect();

    // Window (as complex for the apply helper), repack to real.
    let mut windowed: Vec<Complex<f64>> = signal.iter().map(|&v| Complex::new(v, 0.0)).collect();
    window.apply(&mut windowed);
    let real_windowed: Vec<f64> = windowed.iter().map(|c| c.re).collect();

    let bins = fft.process(&real_windowed)?;
    let gain = window.coherent_gain(len) * len as f64 / 2.0; // tone amplitude scale

    println!("{len}-point real FFT, {window:?} window, fs = {fs} Hz");
    println!();
    let db = |mag: f64| 20.0 * (mag / gain).max(1e-12).log10();
    let mut peak_bins = Vec::new();
    for (k, bin) in bins.iter().enumerate() {
        let level = db(bin.abs());
        if level > -30.0 {
            peak_bins.push((k, level));
        }
    }
    // Collapse adjacent bins into peaks.
    println!("peaks above -30 dBFS:");
    let mut last = usize::MAX;
    for &(k, level) in &peak_bins {
        if last != usize::MAX && k == last + 1 {
            last = k;
            continue;
        }
        let freq = k as f64 * fs / len as f64;
        println!("  {freq:>8.0} Hz  {level:>6.1} dB");
        last = k;
    }

    // Text spectrogram of the low band.
    println!();
    println!("0..12 kHz band:");
    for k in (0..=128).step_by(4) {
        let level = db(bins[k].abs());
        let bar = ((level + 60.0).max(0.0) as usize).min(60);
        println!("{:>6.0} Hz |{}", k as f64 * fs / len as f64, "#".repeat(bar));
    }

    // Sanity: the 3 kHz tone must dominate at its bin (3000/93.75 = 32).
    let k3 = (3000.0 * len as f64 / fs).round() as usize;
    assert!(db(bins[k3].abs()) > -1.0, "3 kHz tone not at 0 dB");

    // Cross-check the packed real path against every complex backend
    // in the registry: the half-spectrum must match bin for bin. One
    // preallocated spectrum buffer serves the whole sweep — the
    // engines run on the zero-allocation `execute_into` path.
    println!();
    let mut registry = EngineRegistry::standard(len)?;
    let mut full = vec![Complex::zero(); len];
    for engine in registry.engines_mut() {
        engine.execute_into(&windowed, &mut full, Direction::Forward)?;
        let worst = bins.iter().enumerate().map(|(k, b)| b.dist(full[k])).fold(0.0f64, f64::max);
        println!("real FFT vs {:<12} max bin deviation {worst:.2e}", engine.name());
        assert!(worst < 1e-6 * len as f64, "{} disagrees with the real FFT", engine.name());
    }
    Ok(())
}
