//! The paper's flexibility claim: WiMAX/802.16 scales its FFT from 128
//! to 2048 points with channel bandwidth. One ASIP — reprogrammed per
//! size, identical hardware — covers the whole range; here the
//! autotuning planner *measures* that claim: for every WiMAX size it
//! ranks the full engine registry (software models plus the
//! cycle-accurate ISS, which competes on modeled hardware cycles),
//! compares the Estimate heuristics against the Measure calibration,
//! cross-validates every backend against the naive DFT, and merges the
//! measurements into the per-machine wisdom file so later runs — and
//! the `ofdm_uwb_receiver` example — replay the rankings instead of
//! re-measuring (the validation sweep still executes every backend
//! each run; that is the point of the example).
//!
//! ```text
//! cargo run --release --example wimax_scalable
//! ```

use afft::asip::engine::registry_with_asip;
use afft::core::reference::{dft_naive, max_error};
use afft::core::{Direction, Split};
use afft::planner::{calibration_signal, Planner, Strategy, Wisdom};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("WiMAX scalable-FFT sweep, autotuned (identical hardware, per-size program)");
    println!();
    println!(
        "{:>6} {:>5} {:>5} {:>9} {:>10} {:>10} {:>12} {:>12} {:>12} {:>9}",
        "N", "P", "Q", "cycles", "us@300", "Mbps", "max err", "measured", "estimated", "backends"
    );

    // Seeded from the per-machine wisdom file: the first run pays the
    // Measure sweep, later runs replay the cached rankings.
    let path = Wisdom::default_path();
    let mut planner = Planner::with_factory(registry_with_asip)
        .with_wisdom(Wisdom::load(&path)?)
        .with_measure_reps(2);
    for n in [128usize, 256, 512, 1024, 2048] {
        let split = Split::for_size(n)?;
        let estimate = planner.plan(n, Strategy::Estimate)?;
        let measure = planner.plan(n, Strategy::Measure)?;

        // Speed is only half the story: cross-validate every backend
        // against the naive DFT at this size (2048 is covered nowhere
        // else) before trusting the ranking.
        let mut registry = registry_with_asip(n)?;
        let signal = calibration_signal(n);
        let want = dft_naive(&signal, Direction::Forward)?;
        let peak = want.iter().map(|c| c.abs()).fold(0.0f64, f64::max);
        let mut worst = 0.0f64;
        // One spectrum buffer for the whole validation sweep: every
        // backend writes into it through `execute_into`.
        let mut got = vec![afft::num::Complex::zero(); n];
        for engine in registry.engines_mut() {
            if engine.name() == "dft_naive" {
                continue;
            }
            engine.execute_into(&signal, &mut got, Direction::Forward)?;
            let err = max_error(&got, &want) / peak;
            assert!(err < engine.tolerance(), "{} deviates at N={n}", engine.name());
            worst = worst.max(err);
        }

        // The simulated hardware's cost observables: off the measured
        // ranking on a fresh measurement, off the validation sweep's
        // ISS run when the ranking was replayed from wisdom (replays
        // carry no cycle observables).
        let asip = measure
            .ranking
            .iter()
            .find(|r| r.name == "asip_iss")
            .expect("the ISS competes at every WiMAX size");
        let cycles = asip
            .modeled_cycles
            .or_else(|| registry.get("asip_iss").and_then(|e| e.cycles()))
            .expect("the validation sweep ran the ISS");
        println!(
            "{:>6} {:>5} {:>5} {:>9} {:>10.2} {:>10.1} {:>12.2e} {:>12} {:>12} {:>9}",
            n,
            split.p_size,
            split.q_size,
            cycles,
            cycles as f64 / 300.0,
            afft::sim::throughput_mbps(n, cycles, 300.0),
            worst,
            measure.best().name,
            estimate.best().name,
            measure.ranking.len(),
        );
    }

    // The scalability claim beyond powers of two: LTE's 10 MHz profile
    // runs a 1536-point FFT (2^9 * 3) that no radix-2 datapath serves.
    // The same planner covers it through the mixed-radix engine — the
    // registry simply offers fewer backends (and no ISS: the array
    // structure is power-of-two by construction).
    println!();
    println!("LTE-1536 scenario (composite N = 2^9 * 3, mixed-radix path)");
    {
        let n = 1536usize;
        let estimate = planner.plan(n, Strategy::Estimate)?;
        let measure = planner.plan(n, Strategy::Measure)?;
        let signal = calibration_signal(n);
        let want = dft_naive(&signal, Direction::Forward)?;
        let peak = want.iter().map(|c| c.abs()).fold(0.0f64, f64::max);
        let mut registry = registry_with_asip(n)?;
        let mut got = vec![afft::num::Complex::zero(); n];
        let mut worst = 0.0f64;
        for engine in registry.engines_mut() {
            if engine.name() == "dft_naive" {
                continue;
            }
            engine.execute_into(&signal, &mut got, Direction::Forward)?;
            let err = afft::core::reference::max_error(&got, &want) / peak;
            assert!(err < engine.tolerance(), "{} deviates at N={n}", engine.name());
            worst = worst.max(err);
        }
        println!(
            "{:>6} {:>5} {:>5} {:>9} {:>10} {:>10} {:>12.2e} {:>12} {:>12} {:>9}",
            n,
            "-",
            "-",
            "-",
            "-",
            "-",
            worst,
            measure.best().name,
            estimate.best().name,
            measure.ranking.len(),
        );
        assert_eq!(measure.best().name, "mixed_radix", "only FFT-structured backend at 1536");
    }

    // Re-load before storing so plans another process cached while we
    // ran survive the merge.
    let mut wisdom = Wisdom::load(&path)?;
    wisdom.merge(planner.wisdom());
    wisdom.store(&path)?;
    println!();
    println!("every size ranked AND validated against the naive DFT via the FftEngine trait;");
    println!(
        "{} measured plans merged into {} (wisdom now caches {} plans)",
        planner.wisdom().len(),
        path.display(),
        wisdom.len(),
    );
    Ok(())
}
