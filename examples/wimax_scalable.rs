//! The paper's flexibility claim: WiMAX/802.16 scales its FFT from 128
//! to 2048 points with channel bandwidth. One ASIP — reprogrammed per
//! size, identical hardware — covers the whole range, and through the
//! engine registry every software backend sweeps the same sizes for
//! cross-validation.
//!
//! For every WiMAX size this example rebuilds the registry, runs each
//! backend on the same signal, validates everything against the naive
//! DFT via the trait, and prints the ASIP cost table (the paper's
//! "ease of scalability" demonstration extended beyond Table I).
//!
//! ```text
//! cargo run --release --example wimax_scalable
//! ```

use afft::asip::engine::registry_with_asip;
use afft::core::reference::max_error;
use afft::core::{Direction, Split};
use afft::num::C64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("WiMAX scalable-FFT sweep (identical hardware, per-size program)");
    println!();
    println!(
        "{:>6} {:>5} {:>5} {:>9} {:>10} {:>10} {:>12} {:>9}",
        "N", "P", "Q", "cycles", "us@300", "Mbps", "max err", "backends"
    );
    let mut rng = StdRng::seed_from_u64(7);
    for n in [128usize, 256, 512, 1024, 2048] {
        let split = Split::for_size(n)?;
        let signal: Vec<C64> =
            (0..n).map(|_| C64::new(rng.gen_range(-0.8..0.8), rng.gen_range(-0.8..0.8))).collect();

        // Every backend at this size, one polymorphic sweep.
        let registry = registry_with_asip(n)?;
        let want =
            registry.get("dft_naive").expect("golden").execute(&signal, Direction::Forward)?;
        let peak = want.iter().map(|c| c.abs()).fold(0.0f64, f64::max);
        let mut worst = 0.0f64;
        for engine in registry.engines() {
            // The golden reference already ran; don't pay its O(N^2) twice.
            if engine.name() == "dft_naive" {
                continue;
            }
            let got = engine.execute(&signal, Direction::Forward)?;
            let err = max_error(&got, &want) / peak;
            assert!(err < engine.tolerance(), "{} deviates at N={n}", engine.name());
            worst = worst.max(err);
        }

        // The simulated hardware's cost observables for the table.
        let cycles = registry.get("asip_iss").expect("asip").cycles().expect("ran in the sweep");
        println!(
            "{:>6} {:>5} {:>5} {:>9} {:>10.2} {:>10.1} {:>12.2e} {:>9}",
            n,
            split.p_size,
            split.q_size,
            cycles,
            cycles as f64 / 300.0,
            afft::sim::throughput_mbps(n, cycles, 300.0),
            worst,
            registry.len(),
        );
    }
    println!();
    println!("every size ran on the same simulated hardware (CRF sized by epoch-0 group),");
    println!("and every registered backend agreed with the naive DFT via the FftEngine trait");
    Ok(())
}
