//! The paper's flexibility claim: WiMAX/802.16 scales its FFT from 128
//! to 2048 points with channel bandwidth. One ASIP — reprogrammed per
//! size, identical hardware — covers the whole range.
//!
//! For every WiMAX size this example regenerates the program, runs it
//! on the simulator, validates the spectrum against the naive DFT, and
//! prints the cost table (this is also the paper's "ease of
//! scalability" demonstration extended beyond Table I).
//!
//! ```text
//! cargo run --release --example wimax_scalable
//! ```

use afft::asip::runner::{quantize_input, run_array_fft, AsipConfig};
use afft::core::reference::{dft_naive, max_error};
use afft::core::{Direction, Split};
use afft::num::C64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("WiMAX scalable-FFT sweep (identical hardware, per-size program)");
    println!();
    println!(
        "{:>6} {:>5} {:>5} {:>9} {:>10} {:>10} {:>12}",
        "N", "P", "Q", "cycles", "us@300", "Mbps", "max err"
    );
    let mut rng = StdRng::seed_from_u64(7);
    for n in [128usize, 256, 512, 1024, 2048] {
        let split = Split::for_size(n)?;
        let signal: Vec<C64> = (0..n)
            .map(|_| C64::new(rng.gen_range(-0.8..0.8), rng.gen_range(-0.8..0.8)))
            .collect();
        let input = quantize_input(&signal, 1.0);
        let run = run_array_fft(&input, Direction::Forward, &AsipConfig::default())?;

        // Validate the simulated hardware against the exact DFT of the
        // quantised input (hardware scales by 1/N).
        let exact_in: Vec<C64> = input.iter().map(|c| c.to_c64()).collect();
        let want = dft_naive(&exact_in, Direction::Forward)?;
        let got: Vec<C64> = run.output.iter().map(|c| c.to_c64() * n as f64).collect();
        let err = max_error(&got, &want) / want.iter().map(|c| c.abs()).fold(0.0, f64::max);

        println!(
            "{:>6} {:>5} {:>5} {:>9} {:>10.2} {:>10.1} {:>12.2e}",
            n,
            split.p_size,
            split.q_size,
            run.stats.cycles,
            run.stats.cycles as f64 / 300.0,
            run.stats.throughput_mbps(n, 300.0),
            err
        );
        assert!(err < 0.05, "hardware output deviates at N={n}");
    }
    println!();
    println!("every size ran on the same simulated hardware (CRF sized by epoch-0 group)");
    Ok(())
}
