#!/usr/bin/env python3
"""Schema check for the machine-readable bench artifacts.

Usage: check_bench_json.py BENCH_stream.json [more.json ...]

Each artifact is dispatched on its top-level "bench" tag. The check is
deliberately shallow — field presence and types, not values — so a
schema drift fails CI while a slow runner does not.
"""

import json
import sys

HIST_FIELDS = {
    "count": (int, float),
    "mean_ns": (int, float),
    "p50_ns": (int, float, type(None)),
    "p90_ns": (int, float, type(None)),
    "p99_ns": (int, float, type(None)),
    "p999_ns": (int, float, type(None)),
    "min_ns": (int, float, type(None)),
    "max_ns": (int, float, type(None)),
    "saturated": (int, float),
}


def fail(path, msg):
    raise SystemExit(f"{path}: schema check FAILED: {msg}")


def expect(path, obj, key, types):
    if key not in obj:
        fail(path, f"missing key {key!r} in {sorted(obj)}")
    if not isinstance(obj[key], types):
        fail(path, f"key {key!r} has type {type(obj[key]).__name__}, wanted {types}")


def check_histogram(path, where, hist):
    if not isinstance(hist, dict):
        fail(path, f"{where}: histogram summary is {type(hist).__name__}, wanted object")
    for key, types in HIST_FIELDS.items():
        if key not in hist:
            fail(path, f"{where}: histogram missing {key!r}")
        if not isinstance(hist[key], types):
            fail(path, f"{where}.{key}: type {type(hist[key]).__name__}")
    if hist["count"] > 0 and hist["p50_ns"] is None:
        fail(path, f"{where}: non-empty histogram with null p50_ns")


def check_stream(path, doc):
    for key in ("stamp_unix", "n", "symbols", "reps", "workers", "call_workers", "sample_every"):
        expect(path, doc, key, (int, float))
    expect(path, doc, "smoke", bool)
    expect(path, doc, "arms", dict)
    for arm in (
        "sequential_tps",
        "threaded_call_tps",
        "stream_tps",
        "stream_metrics_tps",
        "stream_mc_tps",
    ):
        expect(path, doc["arms"], arm, (int, float))
        if doc["arms"][arm] <= 0:
            fail(path, f"arms.{arm} must be positive, got {doc['arms'][arm]}")
    expect(path, doc, "stream_vs_call", (int, float))
    expect(path, doc, "metrics_overhead_ratio", (int, float))
    expect(path, doc, "queue", dict)
    expect(path, doc["queue"], "capacity", (int, float))
    expect(path, doc["queue"], "high_water", (int, float))
    # The sharded-scheduler counters from the multi-worker contention
    # arm. Shallow like everything else, except the one invariant that
    # is load-bearing: the shard array must match the pool size.
    expect(path, doc, "scheduler", dict)
    sched = doc["scheduler"]
    for key in ("workers", "channels", "steals", "stolen_symbols", "local_symbols"):
        expect(path, sched, key, (int, float))
    expect(path, sched, "local_hit_ratio", (int, float))
    if not 0.0 <= sched["local_hit_ratio"] <= 1.0:
        fail(path, f"scheduler.local_hit_ratio out of [0, 1]: {sched['local_hit_ratio']}")
    expect(path, sched, "shard_high_water", list)
    if len(sched["shard_high_water"]) != sched["workers"]:
        fail(
            path,
            f"scheduler.shard_high_water has {len(sched['shard_high_water'])} entries "
            f"for {sched['workers']} workers",
        )
    expect(path, doc, "channels", list)
    if not doc["channels"]:
        fail(path, "channels array is empty")
    for chan in doc["channels"]:
        expect(path, chan, "channel", (int, float))
        for stage in ("latency", "queue_wait", "transform", "reorder_park"):
            if stage not in chan:
                fail(path, f"channel {chan.get('channel')}: missing stage {stage!r}")
            check_histogram(path, f"channel {chan.get('channel')}.{stage}", chan[stage])
        delivered = chan["latency"]["count"]
        if delivered <= 0:
            fail(path, f"channel {chan.get('channel')}: latency histogram is empty")


def check_throughput(path, doc):
    expect(path, doc, "stamp_unix", (int, float))
    expect(path, doc, "sizes", list)
    expect(path, doc, "results", list)
    if not doc["results"]:
        fail(path, "results array is empty")
    for rec in doc["results"]:
        expect(path, rec, "n", (int, float))
        expect(path, rec, "engine", str)
        expect(path, rec, "into_tps", (int, float))


def check_net(path, doc):
    for key in ("stamp_unix", "n", "cp", "frames", "reps", "workers", "window"):
        expect(path, doc, key, (int, float))
    expect(path, doc, "smoke", bool)
    expect(path, doc, "arms", dict)
    for arm in ("direct_tps", "tcp_tps"):
        expect(path, doc["arms"], arm, (int, float))
        if doc["arms"][arm] <= 0:
            fail(path, f"arms.{arm} must be positive, got {doc['arms'][arm]}")
    expect(path, doc, "tcp_vs_direct", (int, float))
    # The load-shedding ledger: the one value judgment the checker
    # makes, because a flood that never shed proves nothing.
    expect(path, doc, "flood", dict)
    flood = doc["flood"]
    for key in ("frames", "accepted", "shed", "retry_after_ms"):
        expect(path, flood, key, (int, float))
    if flood["shed"] < 1:
        fail(path, f"flood.shed must be >= 1, got {flood['shed']}")
    if flood["accepted"] + flood["shed"] != flood["frames"]:
        fail(
            path,
            f"flood ledger unbalanced: {flood['accepted']} accepted + "
            f"{flood['shed']} shed != {flood['frames']} frames",
        )
    # The embedded admin document — the same JSON a live STATS frame
    # returns. Server counters, then the full pipeline snapshot with
    # per-channel histograms when observability was on.
    expect(path, doc, "admin", dict)
    admin = doc["admin"]
    expect(path, admin, "server", str)
    if admin["server"] != "afft_net":
        fail(path, f"admin.server is {admin['server']!r}, wanted 'afft_net'")
    for key in ("channels", "connections", "frames_in", "shed", "protocol_errors"):
        expect(path, admin, key, (int, float))
    expect(path, admin, "poisoned", bool)
    expect(path, admin, "pipeline", dict)
    pipe = admin["pipeline"]
    for key in ("submitted", "completed", "delivered", "rejected", "queue_capacity"):
        expect(path, pipe, key, (int, float))
    expect(path, pipe, "scheduler", dict)
    expect(path, pipe, "per_channel", list)
    if not pipe["per_channel"]:
        fail(path, "admin.pipeline.per_channel is empty")
    for chan in pipe["per_channel"]:
        for key in ("channel", "submitted", "completed", "delivered"):
            expect(path, chan, key, (int, float))
    for chan in pipe.get("channels", []):
        for stage in ("latency", "queue_wait", "transform", "reorder_park"):
            if stage not in chan:
                fail(path, f"admin channel {chan.get('channel')}: missing stage {stage!r}")
            check_histogram(path, f"admin channel {chan.get('channel')}.{stage}", chan[stage])


CHECKS = {"stream": check_stream, "throughput": check_throughput, "net": check_net}


def main(argv):
    if len(argv) < 2:
        raise SystemExit(__doc__.strip())
    for path in argv[1:]:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        expect(path, doc, "bench", str)
        check = CHECKS.get(doc["bench"])
        if check is None:
            fail(path, f"unknown bench tag {doc['bench']!r} (known: {sorted(CHECKS)})")
        check(path, doc)
        print(f"{path}: ok ({doc['bench']} schema)")


if __name__ == "__main__":
    main(sys.argv)
