//! **afft** — a full reproduction of *"Design of an Application-specific
//! Instruction Set Processor for High-throughput and Scalable FFT"*
//! (Guan, Lin, Fei — DATE 2009) as a Rust workspace.
//!
//! This facade crate re-exports the workspace so applications can use a
//! single dependency:
//!
//! * [`core`] ([`afft_core`]) — the array-structured FFT algorithm,
//!   address-changing algebra, coefficient storage and prior-art
//!   baselines (naive DFT, radix-2, Baas cached FFT, MCFFT);
//! * [`num`] ([`afft_num`]) — complex/fixed-point arithmetic and the
//!   IEEE-754 soft-float specification;
//! * [`isa`] ([`afft_isa`]) — the PISA-like ISA with the custom
//!   `BUT4`/`LDIN`/`STOUT` instructions, assembler and disassembler;
//! * [`sim`] ([`afft_sim`]) — the instruction-set simulator with data
//!   cache and the custom BU/CRF/AC/ROM hardware;
//! * [`asip`] ([`afft_asip`]) — program generators (Algorithm 1, the
//!   soft-float library, the Imple-1 software FFT) and run drivers;
//! * [`planner`] ([`afft_planner`]) — the autotuning planner: ranks
//!   the registry per transform shape (Estimate heuristics or Measure
//!   calibration), caches winners as serializable wisdom, and batches
//!   multi-symbol workloads through the planned engine;
//! * [`stream`] ([`afft_stream`]) — the persistent streaming pipeline:
//!   a long-lived worker pool over planned engines with bounded
//!   queues, backpressure, and strict per-channel in-order completion
//!   delivery for continuous OFDM traffic;
//! * [`net`] ([`afft_net`]) — the network-facing serving layer: a TCP
//!   binary-frame front-end over the stream pipeline with
//!   protocol-level load shedding (`RETRY_AFTER`), buffer recycling,
//!   graceful drain, an admin stats endpoint, and a loopback client;
//! * [`obs`] ([`afft_obs`]) — the zero-dependency observability layer:
//!   log-bucketed latency histograms, sharded lock-free recorders,
//!   stage timers, named counters, and text/JSON exporters, wired
//!   through the stream, planner, and bench layers (global switch:
//!   `AFFT_OBS`, default on);
//! * [`baselines`] ([`afft_baselines`]) — the TI C6713 and Xtensa
//!   trace-driven models of Table II;
//! * [`hwmodel`] ([`afft_hwmodel`]) — the Section IV gate/power/timing
//!   model.
//!
//! # Quickstart
//!
//! ```
//! use afft::core::{ArrayFft, Direction};
//! use afft::num::Complex;
//!
//! // Software golden model:
//! let fft: ArrayFft<f64> = ArrayFft::new(1024)?;
//! let x = vec![Complex::new(1.0, 0.0); 1024];
//! let spectrum = fft.process(&x, Direction::Forward)?;
//! assert!((spectrum[0].re - 1024.0).abs() < 1e-6);
//!
//! // Cycle-accurate ASIP simulation of the same transform:
//! use afft::asip::runner::{quantize_input, run_array_fft, AsipConfig};
//! let input = quantize_input(&x, 0.5);
//! let run = run_array_fft(&input, Direction::Forward, &AsipConfig::default())?;
//! assert!(run.stats.cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use afft_asip as asip;
pub use afft_baselines as baselines;
pub use afft_core as core;
pub use afft_hwmodel as hwmodel;
pub use afft_isa as isa;
pub use afft_net as net;
pub use afft_num as num;
pub use afft_obs as obs;
pub use afft_planner as planner;
pub use afft_sim as sim;
pub use afft_stream as stream;
