//! Numerical-accuracy floor at a large prime size: every engine the
//! standard registry offers at N = 1009 (and 251), measured as RMS
//! error against the f64 naive DFT.
//!
//! # Why RMS, and why these bounds
//!
//! The conformance suites bound the **worst bin**; this suite bounds
//! the **root-mean-square** over all bins, which is what accumulating
//! roundoff actually moves. For an f64 FFT built from unit-modulus
//! twiddles, per-bin error grows like `c · ε · √(log₂ M)` relative to
//! the spectrum's RMS level, with `ε = 2⁻⁵² ≈ 2.2e-16` and `c` a
//! small constant per butterfly flavour:
//!
//! * the **direct engines** (`dft_naive` is the reference itself;
//!   `rader`'s smooth inner path, `bluestein`) route through at most
//!   three split-radix passes of `M ≤ 4096` points plus O(1) chirp or
//!   permutation multiplies per point, so the expected relative RMS
//!   error sits near `10⁻¹⁵`;
//! * `rader` at 1009 recurses into Bluestein for its rough 1008-point
//!   inner convolution — roughly **twice** the chirp-Z depth, still
//!   comfortably below `10⁻¹⁴`.
//!
//! The asserted bound of **1e-12** is therefore ~2–3 orders of
//! magnitude above the expected floor: loose enough never to flake on
//! a different FMA/rounding regime (`AFFT_NO_SIMD=1`, other hosts),
//! tight enough that any *structural* defect — a wrong chirp angle, a
//! stale convolution arena, an off-by-one in the generator
//! permutation — shows up as an O(1) relative error and fails by ten
//! orders of magnitude.

use afft::core::engine::EngineRegistry;
use afft::core::reference::dft_naive;
use afft::core::Direction;
use afft::num::{Complex, C64};

/// Deterministic unit-variance-ish random signal (xorshift, seeded by
/// the size — same generator family as the golden-vector suite).
fn random_input(n: usize) -> Vec<C64> {
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15 ^ ((n as u64) << 21);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    (0..n).map(|_| Complex::new(next(), next())).collect()
}

/// RMS of a complex vector.
fn rms(v: &[C64]) -> f64 {
    (v.iter().map(|c| c.norm_sqr()).sum::<f64>() / v.len() as f64).sqrt()
}

/// RMS error of `got` against `want`, relative to the RMS level of
/// `want` — scale-free, so the bound means the same thing at any N.
fn relative_rms_error(got: &[C64], want: &[C64]) -> f64 {
    let err: f64 = got.iter().zip(want).map(|(&g, &w)| g.dist(w).powi(2)).sum();
    (err / want.len() as f64).sqrt() / rms(want)
}

/// The documented accuracy floor (see the module docs for the
/// derivation): ~2–3 orders above the expected `10⁻¹⁵..10⁻¹⁴` f64
/// roundoff level, ~10 orders below any structural failure.
const RMS_BOUND: f64 = 1e-12;

#[test]
fn every_engine_meets_the_rms_floor_at_large_prime_sizes() {
    // 251 exercises Rader's smooth inner path (250 = 2·5³); 1009
    // exercises the deepest stack in the crate: Rader recursing into
    // Bluestein for its rough 1008 = 2⁴·3²·7 inner convolution.
    for n in [251usize, 1009] {
        let x = random_input(n);
        let mut registry = EngineRegistry::standard(n).expect("prime sizes are supported");
        for dir in [Direction::Forward, Direction::Inverse] {
            let want = dft_naive(&x, dir).expect("reference");
            for engine in registry.engines_mut() {
                if engine.name() == "dft_naive" {
                    continue; // the reference itself
                }
                let got = engine.execute(&x, dir).expect("execute");
                let err = relative_rms_error(&got, &want);
                assert!(
                    err < RMS_BOUND,
                    "{} n={n} {dir:?}: relative RMS error {err:.3e} exceeds {RMS_BOUND:.0e}",
                    engine.name()
                );
            }
        }
    }
}

#[test]
fn rms_floor_holds_for_the_convolution_engines_specifically() {
    // The two new engines by name, so a registry reordering can never
    // silently drop them from the assertion above.
    for n in [251usize, 1009] {
        let x = random_input(n);
        let want = dft_naive(&x, Direction::Forward).expect("reference");
        let mut registry = EngineRegistry::standard(n).expect("supported");
        for name in ["rader", "bluestein"] {
            let engine = registry.get_mut(name).expect("registered at primes");
            let got = engine.execute(&x, Direction::Forward).expect("execute");
            let err = relative_rms_error(&got, &want);
            assert!(err < RMS_BOUND, "{name} n={n}: {err:.3e}");
        }
    }
}
