//! Experiment E4 and the central correctness artifact: the array
//! structure (Fig. 1/Fig. 2 data flow) computes the right FFT — on the
//! golden model, on the simulated hardware, bit-exactly between the
//! two, across sizes, directions and signal classes.

use afft::asip::runner::{golden_array_fft, quantize_input, run_array_fft, AsipConfig};
use afft::core::reference::{dft_naive, fft_radix2_dit_f64, max_error};
use afft::core::{ArrayFft, Direction};
use afft::num::{twiddle, Complex, C64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_signal(n: usize, seed: u64) -> Vec<C64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
}

#[test]
fn golden_model_matches_naive_dft_all_sizes() {
    for n in [64usize, 128, 256, 512, 1024, 2048] {
        let fft: ArrayFft<f64> = ArrayFft::new(n).expect("plan");
        let x = random_signal(n, n as u64);
        let want = dft_naive(&x, Direction::Forward).expect("naive");
        let got = fft.process(&x, Direction::Forward).expect("array");
        assert!(max_error(&got, &want) < 1e-7 * n as f64, "n={n}");
    }
}

#[test]
fn golden_model_matches_radix2_library() {
    let n = 1024;
    let fft: ArrayFft<f64> = ArrayFft::new(n).expect("plan");
    let x = random_signal(n, 17);
    let mut want = x.clone();
    fft_radix2_dit_f64(&mut want, Direction::Forward).expect("radix2");
    let got = fft.process(&x, Direction::Forward).expect("array");
    assert!(max_error(&got, &want) < 1e-8);
}

#[test]
fn iss_is_bit_exact_against_golden_for_every_paper_size() {
    for n in [64usize, 128, 256, 512, 1024] {
        let input = quantize_input(&random_signal(n, 100 + n as u64), 0.9);
        let run =
            run_array_fft(&input, Direction::Forward, &AsipConfig::default()).expect("ASIP run");
        let golden = golden_array_fft(&input, Direction::Forward).expect("golden");
        assert_eq!(run.output, golden, "n={n}: ISS deviates from golden model");
    }
}

#[test]
fn iss_is_bit_exact_for_extension_sizes() {
    for n in [2048usize, 4096] {
        let input = quantize_input(&random_signal(n, 200 + n as u64), 0.9);
        let run =
            run_array_fft(&input, Direction::Forward, &AsipConfig::default()).expect("ASIP run");
        let golden = golden_array_fft(&input, Direction::Forward).expect("golden");
        assert_eq!(run.output, golden, "n={n}");
    }
}

#[test]
fn iss_is_bit_exact_for_inverse_direction() {
    let n = 128;
    let input = quantize_input(&random_signal(n, 5), 0.9);
    let run = run_array_fft(&input, Direction::Inverse, &AsipConfig::default()).expect("ASIP run");
    let golden = golden_array_fft(&input, Direction::Inverse).expect("golden");
    assert_eq!(run.output, golden);
}

#[test]
fn impulse_and_dc_signals() {
    let n = 64;
    let fft: ArrayFft<f64> = ArrayFft::new(n).expect("plan");
    // Impulse -> flat spectrum.
    let mut x = vec![Complex::zero(); n];
    x[0] = Complex::new(1.0, 0.0);
    let y = fft.process(&x, Direction::Forward).expect("fft");
    for bin in &y {
        assert!(bin.dist(Complex::new(1.0, 0.0)) < 1e-9);
    }
    // DC -> single bin.
    let x = vec![Complex::new(1.0, 0.0); n];
    let y = fft.process(&x, Direction::Forward).expect("fft");
    assert!((y[0].re - n as f64).abs() < 1e-9);
    for bin in &y[1..] {
        assert!(bin.abs() < 1e-9);
    }
}

#[test]
fn pure_tones_hit_their_bins_on_the_simulated_hardware() {
    let n = 64;
    for tone in [1usize, 5, 31, 33, 63] {
        let x: Vec<C64> = (0..n).map(|m| twiddle(n, (tone * m) % n).conj() * 0.8).collect();
        let input = quantize_input(&x, 1.0);
        let run =
            run_array_fft(&input, Direction::Forward, &AsipConfig::default()).expect("ASIP run");
        // Hardware output is DFT/N: the tone bin should be ~0.8.
        for (k, bin) in run.output.iter().enumerate() {
            let mag = bin.to_c64().abs();
            if k == tone {
                assert!((mag - 0.8).abs() < 0.02, "tone {tone}: bin {k} mag {mag}");
            } else {
                assert!(mag < 0.02, "tone {tone}: leakage at bin {k}: {mag}");
            }
        }
    }
}

#[test]
fn forward_inverse_roundtrip_through_the_hardware() {
    let n = 256;
    let x = random_signal(n, 77);
    let input = quantize_input(&x, 0.9);
    let fwd = run_array_fft(&input, Direction::Forward, &AsipConfig::default()).expect("fwd");
    let inv = run_array_fft(&fwd.output, Direction::Inverse, &AsipConfig::default()).expect("inv");
    // forward scales 1/N, inverse scales 1/N, IDFT brings factor N:
    // recovered = input / N.
    let got: Vec<C64> = inv.output.iter().map(|c| c.to_c64() * n as f64).collect();
    let want: Vec<C64> = input.iter().map(|c| c.to_c64()).collect();
    assert!(max_error(&got, &want) < 0.05);
}

#[test]
fn linearity_on_the_hardware() {
    let n = 64;
    let a = quantize_input(&random_signal(n, 1), 0.4);
    let b = quantize_input(&random_signal(n, 2), 0.4);
    let sum: Vec<_> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
    let fa = run_array_fft(&a, Direction::Forward, &AsipConfig::default()).expect("a");
    let fb = run_array_fft(&b, Direction::Forward, &AsipConfig::default()).expect("b");
    let fs = run_array_fft(&sum, Direction::Forward, &AsipConfig::default()).expect("sum");
    for k in 0..n {
        let lin = fa.output[k].to_c64() + fb.output[k].to_c64();
        let got = fs.output[k].to_c64();
        assert!(got.dist(lin) < 5e-3, "bin {k}");
    }
}

#[test]
fn parseval_energy_is_preserved_by_the_golden_model() {
    let n = 512;
    let fft: ArrayFft<f64> = ArrayFft::new(n).expect("plan");
    let x = random_signal(n, 3);
    let y = fft.process(&x, Direction::Forward).expect("fft");
    let ex: f64 = x.iter().map(|c| c.norm_sqr()).sum();
    let ey: f64 = y.iter().map(|c| c.norm_sqr()).sum();
    assert!((ey - ex * n as f64).abs() < 1e-6 * ex * n as f64);
}
