//! Cross-implementation consistency: the four Table-II implementations
//! agree on results where they carry data, and reproduce the paper's
//! performance hierarchy on every observable.

use afft::asip::runner::{quantize_input, run_array_fft, AsipConfig};
use afft::asip::swfft::run_software_fft;
use afft::baselines::{ti, xtensa};
use afft::core::reference::{dft_naive, max_error};
use afft::core::Direction;
use afft::num::{Complex, C64};
use afft::sim::Timing;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_signal(n: usize, seed: u64) -> Vec<C64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
}

#[test]
fn imple1_and_imple4_compute_the_same_spectrum() {
    let n = 64;
    let x = random_signal(n, 11);
    let sw = run_software_fft(&x, Direction::Forward, Timing::default(), 100_000_000)
        .expect("software FFT");
    let want = dft_naive(&x, Direction::Forward).expect("naive");
    assert!(max_error(&sw.output, &want) < 1e-2, "Imple1 deviates from DFT");

    let asip = run_array_fft(&quantize_input(&x, 0.9), Direction::Forward, &AsipConfig::default())
        .expect("ASIP");
    // Compare the two hardware paths (scales differ: f32 exact vs Q15/N).
    for k in 0..n {
        let a = asip.output[k].to_c64() * (n as f64 / 0.9);
        let b = sw.output[k];
        assert!(a.dist(b) < 0.6, "bin {k}: {a:?} vs {b:?}");
    }
}

#[test]
fn performance_hierarchy_matches_the_paper() {
    let n = 1024;
    let sw = run_software_fft(&random_signal(n, 1), Direction::Forward, Timing::default(), 50_000_000)
        .expect("sw");
    let ti_run = ti::run_ti_fft(n, &ti::TiConfig::default());
    let xt = xtensa::run_xtensa_fft(n, &xtensa::XtensaConfig::default());
    let ours = run_array_fft(
        &quantize_input(&random_signal(n, 1), 0.9),
        Direction::Forward,
        &AsipConfig::default(),
    )
    .expect("asip");

    // Cycles: Imple1 >> Imple2 > Imple3 > Imple4 (paper's ordering).
    assert!(sw.stats.cycles > 50 * ti_run.cycles, "Imple1 must dwarf the rest");
    assert!(ti_run.cycles > xt.cycles, "TI slower than Xtensa");
    assert!(xt.cycles > ours.stats.cycles, "Xtensa slower than the array ASIP");

    // Factor bands (paper: 866.5X, 6.0X, 2.3X; we accept the same
    // order of magnitude, see EXPERIMENTS.md).
    let f1 = sw.stats.cycles as f64 / ours.stats.cycles as f64;
    let f2 = ti_run.cycles as f64 / ours.stats.cycles as f64;
    let f3 = xt.cycles as f64 / ours.stats.cycles as f64;
    assert!((200.0..2000.0).contains(&f1), "Imple1 factor {f1}");
    assert!((2.0..12.0).contains(&f2), "Imple2 factor {f2}");
    assert!((1.2..4.0).contains(&f3), "Imple3 factor {f3}");

    // Loads/stores: ours ~ N vs Xtensa ~ (N/2) log2 N (paper: 5.2X/4.4X).
    assert!(xt.loads >= 4 * ours.stats.table_loads());
    assert!(xt.stores >= 4 * ours.stats.table_stores());

    // Cache misses: the streaming CRF port keeps ours far below the
    // cached implementations.
    assert!(ours.stats.cache_misses() < xt.cache_misses());
    assert!(xt.cache_misses() < ti_run.cache_misses());
}

#[test]
fn table_counts_follow_closed_forms() {
    for n in [256usize, 1024] {
        let run = run_array_fft(
            &quantize_input(&random_signal(n, 2), 0.9),
            Direction::Forward,
            &AsipConfig::default(),
        )
        .expect("asip");
        let log2n = n.trailing_zeros() as u64;
        assert_eq!(run.stats.ldin, n as u64, "LDIN = N (N/2 per epoch)");
        assert_eq!(run.stats.stout, n as u64, "STOUT = N");
        assert_eq!(run.stats.but4, n as u64 * log2n / 8, "BUT4 = N log2 N / 8");
        // Xtensa's op count formula for the same size.
        let xt = xtensa::run_xtensa_fft(n, &xtensa::XtensaConfig::default());
        assert_eq!(xt.loads, (n as u64 / 2) * log2n);
    }
}

#[test]
fn throughput_decreases_with_size_as_in_table1() {
    let mut last = f64::INFINITY;
    for n in [64usize, 128, 256, 512, 1024] {
        let run = run_array_fft(
            &quantize_input(&random_signal(n, 3), 0.9),
            Direction::Forward,
            &AsipConfig::default(),
        )
        .expect("asip");
        let mbps = run.stats.throughput_mbps(n, 300.0);
        assert!(mbps < last, "throughput must decrease: N={n} gives {mbps} (prev {last})");
        last = mbps;
    }
}
