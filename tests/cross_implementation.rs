//! Cross-implementation consistency through the `FftEngine` layer:
//! every registered backend — software models and the cycle-accurate
//! ASIP — agrees on the spectrum via one polymorphic interface, and the
//! paper's performance hierarchy holds on every observable.

use afft::asip::engine::{registry_with_asip, AsipEngine};
use afft::asip::swfft::run_software_fft;
use afft::baselines::{ti, xtensa};
use afft::core::engine::FftEngine;
use afft::core::reference::{dft_naive, max_error};
use afft::core::Direction;
use afft::num::{Complex, C64};
use afft::sim::Timing;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_signal(n: usize, seed: u64) -> Vec<C64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
}

fn spectrum_peak(bins: &[C64]) -> f64 {
    bins.iter().map(|c| c.abs()).fold(f64::MIN_POSITIVE, f64::max)
}

#[test]
fn every_registered_engine_computes_the_same_spectrum() {
    for n in [8usize, 64, 256, 1024] {
        let mut registry = registry_with_asip(n).expect("registry");
        let x = random_signal(n, 11 + n as u64);
        let want = dft_naive(&x, Direction::Forward).expect("naive");
        let peak = spectrum_peak(&want);
        for engine in registry.engines_mut() {
            let got = engine
                .execute(&x, Direction::Forward)
                .unwrap_or_else(|e| panic!("{}: {e}", engine.name()));
            let err = max_error(&got, &want) / peak;
            assert!(
                err < engine.tolerance(),
                "{} deviates at n={n}: {err} (tolerance {})",
                engine.name(),
                engine.tolerance()
            );
        }
    }
}

#[test]
fn registry_carries_all_backends_at_1024() {
    let registry = registry_with_asip(1024).expect("registry");
    assert!(registry.len() >= 5, "expected >= 5 backends, got {:?}", registry.names());
    for name in [
        "dft_naive",
        "radix2_dit",
        "radix2_dif",
        "mcfft",
        "array_fft",
        "cached_fft",
        "real_fft",
        "asip_iss",
    ] {
        assert!(registry.get(name).is_some(), "missing engine {name}");
        assert_eq!(registry.get(name).unwrap().len(), 1024);
    }
}

#[test]
fn performance_hierarchy_matches_the_paper() {
    let n = 1024;
    let sw =
        run_software_fft(&random_signal(n, 1), Direction::Forward, Timing::default(), 50_000_000)
            .expect("sw");
    let ti_run = ti::run_ti_fft(n, &ti::TiConfig::default());
    let xt = xtensa::run_xtensa_fft(n, &xtensa::XtensaConfig::default());
    let mut imple4 = AsipEngine::new(n).expect("plan");
    imple4.execute(&random_signal(n, 1), Direction::Forward).expect("asip");
    let ours = imple4.last_stats().expect("stats");

    // Cycles: Imple1 >> Imple2 > Imple3 > Imple4 (paper's ordering).
    assert!(sw.stats.cycles > 50 * ti_run.cycles, "Imple1 must dwarf the rest");
    assert!(ti_run.cycles > xt.cycles, "TI slower than Xtensa");
    assert!(xt.cycles > ours.cycles, "Xtensa slower than the array ASIP");

    // Factor bands (paper: 866.5X, 6.0X, 2.3X; we accept the same
    // order of magnitude, see EXPERIMENTS.md).
    let f1 = sw.stats.cycles as f64 / ours.cycles as f64;
    let f2 = ti_run.cycles as f64 / ours.cycles as f64;
    let f3 = xt.cycles as f64 / ours.cycles as f64;
    assert!((200.0..2000.0).contains(&f1), "Imple1 factor {f1}");
    assert!((2.0..12.0).contains(&f2), "Imple2 factor {f2}");
    assert!((1.2..4.0).contains(&f3), "Imple3 factor {f3}");

    // Loads/stores: ours ~ N vs Xtensa ~ (N/2) log2 N (paper: 5.2X/4.4X).
    assert!(xt.loads >= 4 * ours.table_loads());
    assert!(xt.stores >= 4 * ours.table_stores());

    // Cache misses: the streaming CRF port keeps ours far below the
    // cached implementations.
    assert!(ours.cache_misses() < xt.cache_misses());
    assert!(xt.cache_misses() < ti_run.cache_misses());
}

#[test]
fn table_counts_follow_closed_forms() {
    for n in [256usize, 1024] {
        let mut engine = AsipEngine::new(n).expect("plan");
        engine.execute(&random_signal(n, 2), Direction::Forward).expect("asip");
        let stats = engine.last_stats().expect("stats");
        let log2n = n.trailing_zeros() as u64;
        assert_eq!(stats.ldin, n as u64, "LDIN = N (N/2 per epoch)");
        assert_eq!(stats.stout, n as u64, "STOUT = N");
        assert_eq!(stats.but4, n as u64 * log2n / 8, "BUT4 = N log2 N / 8");
        // The trait-level traffic view agrees: two points per beat.
        let traffic = engine.traffic().expect("traffic");
        assert_eq!(traffic.loads, 2 * n);
        assert_eq!(traffic.stores, 2 * n);
        // Xtensa's op count formula for the same size.
        let xt = xtensa::run_xtensa_fft(n, &xtensa::XtensaConfig::default());
        assert_eq!(xt.loads, (n as u64 / 2) * log2n);
    }
}

#[test]
fn traffic_hierarchy_across_engines_matches_section_ii() {
    // The paper's motivation: the plain FFT moves N log2 N points each
    // way, the epoch-structured engines 2N. Read it off the registry.
    let n = 1024usize;
    let registry = registry_with_asip(n).expect("registry");
    let plain = registry.get("radix2_dit").unwrap().traffic().unwrap();
    for epoch_engine in ["cached_fft", "array_fft", "asip_iss"] {
        let t = registry.get(epoch_engine).unwrap().traffic().unwrap();
        assert_eq!(t.total(), 4 * n, "{epoch_engine}");
        assert_eq!(plain.total() / t.total(), 5, "{epoch_engine}: log2(N)/2 = 5x at 1024");
    }
}

#[test]
fn throughput_decreases_with_size_as_in_table1() {
    let mut last = f64::INFINITY;
    for n in [64usize, 128, 256, 512, 1024] {
        let mut engine = AsipEngine::new(n).expect("plan");
        engine.execute(&random_signal(n, 3), Direction::Forward).expect("asip");
        let stats = engine.last_stats().expect("stats");
        let mbps = stats.throughput_mbps(n, 300.0);
        assert!(mbps < last, "throughput must decrease: N={n} gives {mbps} (prev {last})");
        last = mbps;
    }
}
