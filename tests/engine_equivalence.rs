//! The `FftEngine` contract, property-tested: every backend the
//! registry returns — software models and the cycle-accurate ASIP —
//! matches the naive DFT within its declared tolerance on random
//! inputs across sizes 8..=1024, inverts its own forward transform,
//! and produces **bit-identical** spectra through the allocating
//! `execute` wrapper and the zero-allocation `execute_into` primitive.

use afft::asip::engine::registry_with_asip;
use afft::core::engine::EngineRegistry;
use afft::core::reference::{dft_naive, max_error};
use afft::core::Direction;
use afft::num::{Complex, C64};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_signal(n: usize, seed: u64) -> Vec<C64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
}

fn spectrum_peak(bins: &[C64]) -> f64 {
    bins.iter().map(|c| c.abs()).fold(f64::MIN_POSITIVE, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite: every registered engine equals `dft_naive` within its
    /// per-backend tolerance, for random signals and sizes 8..=1024.
    #[test]
    fn every_engine_matches_the_naive_dft(
        log_n in 3u32..=10,
        seed in 0u64..1_000_000,
        inverse in any::<bool>(),
    ) {
        let n = 1usize << log_n;
        let dir = if inverse { Direction::Inverse } else { Direction::Forward };
        let mut registry = registry_with_asip(n).expect("registry");
        prop_assert!(registry.len() >= 4, "registry too small at n={}", n);
        let x = random_signal(n, seed);
        let want = dft_naive(&x, dir).expect("naive");
        let peak = spectrum_peak(&want);
        for engine in registry.engines_mut() {
            let got = engine.execute(&x, dir).unwrap_or_else(|e| panic!("{}: {e}", engine.name()));
            prop_assert_eq!(got.len(), n);
            let err = max_error(&got, &want) / peak;
            prop_assert!(
                err < engine.tolerance(),
                "{} at n={} ({:?}): relative error {} exceeds tolerance {}",
                engine.name(), n, dir, err, engine.tolerance()
            );
        }
    }

    /// Satellite: `execute` and `execute_into` are **bit-identical**
    /// (not merely within tolerance) for every engine in the standard
    /// registry, across sizes and both directions — the convenience
    /// wrapper is exactly the primitive plus one allocation. The output
    /// buffer is deliberately reused dirty across engines to prove no
    /// stale contents leak into a result.
    #[test]
    fn execute_into_is_bit_identical_to_execute_for_every_engine(
        log_n in 3u32..=10,
        seed in 0u64..1_000_000,
        inverse in any::<bool>(),
    ) {
        let n = 1usize << log_n;
        let dir = if inverse { Direction::Inverse } else { Direction::Forward };
        let mut registry = EngineRegistry::standard(n).expect("registry");
        let x = random_signal(n, seed);
        let mut out = vec![Complex::new(f64::NAN, f64::NAN); n];
        for engine in registry.engines_mut() {
            let alloc = engine
                .execute(&x, dir)
                .unwrap_or_else(|e| panic!("{}: {e}", engine.name()));
            engine
                .execute_into(&x, &mut out, dir)
                .unwrap_or_else(|e| panic!("{}: {e}", engine.name()));
            prop_assert_eq!(
                &alloc, &out,
                "{} at n={} ({:?}): wrapper and primitive diverge", engine.name(), n, dir
            );
        }
    }
}

/// Satellite: `execute(Forward)` then `execute(Inverse)` recovers the
/// input (scaled by `N`, per the unnormalised-transform contract) for
/// every engine in the registry.
#[test]
fn forward_then_inverse_recovers_the_input_for_every_engine() {
    for n in [8usize, 64, 256, 1024] {
        let mut registry = registry_with_asip(n).expect("registry");
        let x = random_signal(n, 42 + n as u64);
        let input_peak = spectrum_peak(&x);
        for engine in registry.engines_mut() {
            let spectrum = engine
                .execute(&x, Direction::Forward)
                .unwrap_or_else(|e| panic!("{}: {e}", engine.name()));
            let back = engine
                .execute(&spectrum, Direction::Inverse)
                .unwrap_or_else(|e| panic!("{}: {e}", engine.name()));
            let got: Vec<C64> = back.iter().map(|&v| v * (1.0 / n as f64)).collect();
            // Two cascaded transforms: allow each pass its tolerance.
            // The inverse pass's error budget is relative to the
            // spectrum peak (~N times the input peak), so it dominates.
            let budget = 2.0 * engine.tolerance() * spectrum_peak(&spectrum) / n as f64;
            let err = max_error(&got, &x) / input_peak;
            assert!(
                err < (budget / input_peak).max(engine.tolerance()),
                "{} round trip at n={n}: error {err}",
                engine.name()
            );
        }
    }
}
