//! Satellite: the `AFFT_NO_SIMD` escape hatch. Setting it removes the
//! SIMD tier from the registry and — critically for cached plans —
//! changes the wisdom backend-set hash, so wisdom recorded with the
//! vector engines present can never be replayed against a suppressed
//! registry.
//!
//! This file holds exactly one `#[test]` and nothing else shares its
//! process: the test mutates the process environment, and the dispatch
//! layer reads `AFFT_NO_SIMD` per call, so it must not race other
//! tests. Cargo runs each integration-test binary as its own process,
//! which is the isolation this relies on.

use afft::core::engine::EngineRegistry;
use afft::core::simd;
use afft::planner::wisdom::backend_set_hash;

fn registry_names(n: usize) -> Vec<String> {
    let registry = EngineRegistry::standard(n).expect("registry");
    registry.names().iter().map(|s| s.to_string()).collect()
}

#[test]
fn afft_no_simd_suppresses_the_tier_and_changes_the_backend_hash() {
    // Baseline: whatever the ambient environment says, an explicit "0"
    // (and absence) mean "not suppressed".
    std::env::remove_var("AFFT_NO_SIMD");
    assert!(!simd::simd_suppressed());
    std::env::set_var("AFFT_NO_SIMD", "0");
    assert!(!simd::simd_suppressed());
    let baseline = registry_names(1024);
    let baseline_hash = backend_set_hash(&baseline.iter().map(String::as_str).collect::<Vec<_>>());
    let host_has_simd = simd::detect_host().is_simd();
    assert_eq!(
        baseline.iter().any(|n| n.ends_with("_simd")),
        host_has_simd,
        "unsuppressed registry must carry the SIMD tier iff the host detects one"
    );

    // Suppressed: the tier disappears and planning falls back cleanly.
    std::env::set_var("AFFT_NO_SIMD", "1");
    assert!(simd::simd_suppressed());
    assert_eq!(simd::active_level(), simd::SimdLevel::Scalar);
    let suppressed = registry_names(1024);
    let suppressed_hash =
        backend_set_hash(&suppressed.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(
        !suppressed.iter().any(|n| n.ends_with("_simd")),
        "AFFT_NO_SIMD=1 must remove every SIMD engine, got {suppressed:?}"
    );
    if host_has_simd {
        // The wisdom key must see a different backend set, so stale
        // SIMD-era rankings cannot be replayed against this registry.
        assert_ne!(baseline_hash, suppressed_hash);
        assert_eq!(
            suppressed.len() + 2,
            baseline.len(),
            "exactly radix4_simd and split_radix_simd should disappear at n=1024"
        );
    } else {
        assert_eq!(baseline_hash, suppressed_hash);
    }

    // Unset again: detection is back in charge.
    std::env::remove_var("AFFT_NO_SIMD");
    assert_eq!(simd::active_level().is_simd(), host_has_simd);
}
