//! End-to-end OFDM receiver test with the FFT running on the
//! *simulated ASIP*: modulate with the golden model, pass through a
//! multipath channel, demodulate on the cycle-accurate hardware,
//! equalise, and demand zero bit errors.

use afft::asip::pipeline::FftPipeline;
use afft::asip::runner::quantize_input;
use afft::core::ofdm::{apply_fir_channel, qpsk_demap, qpsk_map, Ofdm};
use afft::num::{Complex, C64};
use afft::sim::Timing;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 128;
const CP: usize = 32;

fn asip_fft(pipeline: &mut FftPipeline, time: &[C64]) -> Vec<C64> {
    // Scale into the Q15 range, run on the ASIP, undo the 1/N scaling.
    let amp = 0.5;
    let input = quantize_input(time, amp);
    let (out, _cycles) = pipeline.process(&input).expect("ASIP symbol");
    out.iter().map(|c| c.to_c64() * (N as f64 / amp)).collect()
}

#[test]
fn multipath_ofdm_link_through_the_simulated_hardware() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut ofdm = Ofdm::new(N, CP).expect("ofdm plan");
    let mut pipeline = FftPipeline::new(N, Timing::default()).expect("pipeline");

    // A 4-tap channel inside the cyclic prefix.
    let taps = vec![
        Complex::new(0.9, 0.1),
        Complex::new(0.2, -0.25),
        Complex::new(-0.1, 0.05),
        Complex::new(0.05, 0.02),
    ];

    // Channel estimation from a pilot symbol (receiver FFT on the ASIP).
    let pilot_bits: Vec<(bool, bool)> = (0..N).map(|_| (rng.gen(), rng.gen())).collect();
    let pilot = qpsk_map(&pilot_bits);
    let tx_pilot = ofdm.modulate(&pilot).expect("modulate pilot");
    let rx_pilot_time = apply_fir_channel(&tx_pilot, &taps);
    let rx_pilot = asip_fft(&mut pipeline, &rx_pilot_time[CP..]);
    let channel: Vec<C64> =
        rx_pilot.iter().zip(&pilot).map(|(&y, &x)| y * x.conj() * (1.0 / x.norm_sqr())).collect();

    // Data symbols.
    let mut total_bits = 0usize;
    let mut errors = 0usize;
    for _ in 0..4 {
        let bits: Vec<(bool, bool)> = (0..N).map(|_| (rng.gen(), rng.gen())).collect();
        let tx = ofdm.modulate(&qpsk_map(&bits)).expect("modulate");
        let rx_time = apply_fir_channel(&tx, &taps);
        let rx_bins = asip_fft(&mut pipeline, &rx_time[CP..]);
        let eq = ofdm.equalize(&rx_bins, &channel);
        let decided = qpsk_demap(&eq);
        total_bits += 2 * N;
        errors += decided
            .iter()
            .zip(&bits)
            .map(|(d, b)| usize::from(d.0 != b.0) + usize::from(d.1 != b.1))
            .sum::<usize>();
    }
    assert_eq!(errors, 0, "{errors}/{total_bits} bit errors through the simulated ASIP");

    // The pipeline ran 5 symbols (pilot + 4 data) on one machine.
    assert_eq!(pipeline.symbols(), 5);
    assert!(pipeline.steady_state_cycles() > 0.0);
}
