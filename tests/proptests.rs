//! Property-based tests over the core invariants: address algebra,
//! fixed-point datapath, coefficient compression, and transform
//! identities.

use afft::core::address::{
    butterfly_at, epoch0_load_addr, epoch0_store_addr, epoch1_load_addr, epoch1_store_addr,
    natural_bin_to_transposed, sigma, transposed_to_natural_bin,
};
use afft::core::bits::{bit_reverse, BitPerm};
use afft::core::engine::EngineRegistry;
use afft::core::reference::{dft_naive, max_error, Direction};
use afft::core::rom::{resolve_prerot, PrerotTable};
use afft::core::{ArrayFft, Split};
use afft::num::{twiddle, Complex, C64, Q15};
use proptest::prelude::*;

/// The size grid the engine-family law tests sample: powers of two,
/// the composite 5-smooth sizes the mixed-radix engine adds, odd
/// primes (rader + bluestein) and the rough composites (14 = 2·7,
/// 77 = 7·11) only the chirp-Z fallback serves — the DFT laws must
/// hold for every registered engine at arbitrary `n`.
const ENGINE_LAW_SIZES: [usize; 14] = [7, 8, 12, 14, 16, 17, 20, 30, 31, 60, 64, 77, 97, 120];

/// Deterministic random signal for the engine-law tests.
fn law_signal(n: usize, seed: u64) -> Vec<C64> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
}

proptest! {
    #[test]
    fn bit_reverse_is_an_involution(bits in 1u32..16, x in 0usize..65536) {
        let x = x & ((1 << bits) - 1);
        prop_assert_eq!(bit_reverse(bit_reverse(x, bits), bits), x);
    }

    #[test]
    fn bit_reverse_preserves_popcount(bits in 1u32..16, x in 0usize..65536) {
        let x = x & ((1 << bits) - 1);
        prop_assert_eq!(bit_reverse(x, bits).count_ones(), x.count_ones());
    }

    #[test]
    fn sigma_is_a_bijection(p in 3u32..8, j in 1u32..8) {
        let j = 1 + (j - 1) % p;
        let s = sigma(p, j);
        let mut seen = vec![false; 1 << p];
        for x in 0..(1usize << p) {
            let y = s.apply(x);
            prop_assert!(!seen[y]);
            seen[y] = true;
        }
    }

    #[test]
    fn bitperm_inverse_composes_to_identity(seed in 0u64..1000) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut map: Vec<u32> = (0..6).collect();
        map.shuffle(&mut rng);
        let perm = BitPerm::from_map(map);
        let inv = perm.inverse();
        for x in 0..64 {
            prop_assert_eq!(inv.apply(perm.apply(x)), x);
        }
    }

    #[test]
    fn butterflies_partition_the_crf(p in 3u32..8, j in 1u32..8) {
        let j = 1 + (j - 1) % p;
        let mut seen = vec![false; 1 << p];
        for c in 0..(1usize << (p - 1)) {
            let bf = butterfly_at(p, j, c);
            prop_assert!(!seen[bf.addr_a] && !seen[bf.addr_b]);
            seen[bf.addr_a] = true;
            seen[bf.addr_b] = true;
            prop_assert_eq!(bf.addr_b - bf.addr_a, 1 << (p - j));
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn epoch_maps_are_bijections(log_n in 6u32..13) {
        let n = 1usize << log_n;
        let split = Split::for_size(n).expect("valid");
        let mut seen = vec![false; n];
        for l in 0..split.q_size {
            for m in 0..split.p_size {
                let a = epoch0_load_addr(&split, l, m);
                prop_assert!(!seen[a]);
                seen[a] = true;
            }
        }
        // Store map of epoch 0 equals load map of epoch 1.
        for l in 0..split.q_size {
            for s in 0..split.p_size {
                prop_assert_eq!(
                    epoch0_store_addr(&split, l, s),
                    epoch1_load_addr(&split, s, l)
                );
            }
        }
        let mut seen = vec![false; n];
        for s in 0..split.p_size {
            for t in 0..split.q_size {
                let a = epoch1_store_addr(&split, s, t);
                prop_assert!(!seen[a]);
                seen[a] = true;
            }
        }
    }

    #[test]
    fn transposed_layout_roundtrip(log_n in 6u32..13, k in 0usize..8192) {
        let n = 1usize << log_n;
        let split = Split::for_size(n).expect("valid");
        let k = k % n;
        prop_assert_eq!(
            transposed_to_natural_bin(&split, natural_bin_to_transposed(&split, k)),
            k
        );
    }

    #[test]
    fn prerot_resolution_is_exact(log_n in 3u32..12, e in 0usize..100_000) {
        let n = 1usize << log_n;
        let table: PrerotTable<f64> = PrerotTable::new(n).expect("table");
        let got = table.coefficient(e);
        let want = twiddle(n, e % n);
        prop_assert!(got.dist(want) < 1e-12);
        // And the resolved index always fits the compressed table.
        let r = resolve_prerot(n, e);
        prop_assert!(r.index <= n / 8);
    }

    #[test]
    fn q15_addition_never_wraps(a in -32768i32..=32767, b in -32768i32..=32767) {
        let qa = Q15::from_bits(a as i16);
        let qb = Q15::from_bits(b as i16);
        let sum = (qa + qb).to_f64();
        let exact = qa.to_f64() + qb.to_f64();
        // Saturating: result is the exact sum clamped to [-1, 1).
        let clamped = exact.clamp(-1.0, 32767.0 / 32768.0);
        prop_assert!((sum - clamped).abs() < 1e-9);
    }

    #[test]
    fn q15_multiply_error_is_half_lsb(a in -32768i32..=32767, b in -32768i32..=32767) {
        let qa = Q15::from_bits(a as i16);
        let qb = Q15::from_bits(b as i16);
        let got = (qa * qb).to_f64();
        let exact = (qa.to_f64() * qb.to_f64()).clamp(-1.0, 32767.0 / 32768.0);
        prop_assert!((got - exact).abs() <= 0.5 / 32768.0 + 1e-12);
    }

    #[test]
    fn scalar_add_half_is_exact(a in -32768i32..=32767, b in -32768i32..=32767) {
        use afft::num::Scalar;
        let qa = Q15::from_bits(a as i16);
        let qb = Q15::from_bits(b as i16);
        let got = qa.add_half(qb).to_f64();
        let exact = (qa.to_f64() + qb.to_f64()) / 2.0;
        // Floor rounding of the arithmetic shift: error < 1 LSB.
        prop_assert!((got - exact).abs() < 1.0 / 32768.0);
    }

    #[test]
    fn array_fft_matches_naive_on_random_signals(
        log_n in 6u32..10,
        seed in 0u64..50,
    ) {
        let n = 1usize << log_n;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x: Vec<Complex<f64>> = (0..n)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let fft: ArrayFft<f64> = ArrayFft::new(n).expect("plan");
        let got = fft.process(&x, Direction::Forward).expect("fft");
        let want = dft_naive(&x, Direction::Forward).expect("naive");
        prop_assert!(max_error(&got, &want) < 1e-7 * n as f64);
    }

    /// DFT linearity, for **every** registry engine at power-of-two and
    /// composite sizes alike: `F(a·x + b·y) = a·F(x) + b·F(y)` within
    /// the engine's own tolerance.
    #[test]
    fn dft_linearity_holds_for_every_engine(
        size_idx in 0usize..ENGINE_LAW_SIZES.len(),
        seed in 0u64..1000,
        ar in -2.0f64..2.0, ai in -2.0f64..2.0,
        br in -2.0f64..2.0, bi in -2.0f64..2.0,
    ) {
        let n = ENGINE_LAW_SIZES[size_idx];
        let a = Complex::new(ar, ai);
        let b = Complex::new(br, bi);
        let x = law_signal(n, seed);
        let y = law_signal(n, seed ^ 0xdead_beef);
        let combo: Vec<C64> =
            x.iter().zip(&y).map(|(&xv, &yv)| xv * a + yv * b).collect();
        let mut registry = EngineRegistry::standard(n).expect("supported size");
        for engine in registry.engines_mut() {
            let fx = engine.execute(&x, Direction::Forward).unwrap();
            let fy = engine.execute(&y, Direction::Forward).unwrap();
            let fc = engine.execute(&combo, Direction::Forward).unwrap();
            let want: Vec<C64> =
                fx.iter().zip(&fy).map(|(&u, &v)| u * a + v * b).collect();
            // Guard the denominator: a near-cancelling (a, b) draw must
            // not turn roundoff into a huge relative error.
            let peak =
                want.iter().map(|c| c.abs()).fold(0.0, f64::max).max(1e-3 * n as f64);
            let err = max_error(&fc, &want) / peak;
            prop_assert!(
                err < 4.0 * engine.tolerance(),
                "{} linearity at n={}: {}", engine.name(), n, err
            );
        }
    }

    /// Parseval energy conservation for every registry engine:
    /// `sum |X[k]|^2 = N · sum |x[m]|^2` (unnormalised forward DFT).
    #[test]
    fn parseval_holds_for_every_engine(
        size_idx in 0usize..ENGINE_LAW_SIZES.len(),
        seed in 0u64..1000,
    ) {
        let n = ENGINE_LAW_SIZES[size_idx];
        let x = law_signal(n, seed.wrapping_add(77));
        let ex: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        let mut registry = EngineRegistry::standard(n).expect("supported size");
        for engine in registry.engines_mut() {
            let fx = engine.execute(&x, Direction::Forward).unwrap();
            let ey: f64 = fx.iter().map(|c| c.norm_sqr()).sum();
            let rel = (ey - ex * n as f64).abs() / (ex * n as f64);
            prop_assert!(
                rel < 100.0 * engine.tolerance(),
                "{} parseval at n={}: {}", engine.name(), n, rel
            );
        }
    }

    /// Time-shift ↔ phase-ramp duality for every registry engine:
    /// `x((m + s) mod N) ↔ X[k] · conj(W_N^{ks})`.
    #[test]
    fn time_shift_phase_ramp_duality_holds_for_every_engine(
        size_idx in 0usize..ENGINE_LAW_SIZES.len(),
        raw_shift in 1usize..4096,
        seed in 0u64..1000,
    ) {
        let n = ENGINE_LAW_SIZES[size_idx];
        let shift = 1 + raw_shift % (n - 1);
        let x = law_signal(n, seed.wrapping_add(131));
        let shifted: Vec<C64> = (0..n).map(|m| x[(m + shift) % n]).collect();
        let mut registry = EngineRegistry::standard(n).expect("supported size");
        for engine in registry.engines_mut() {
            let fx = engine.execute(&x, Direction::Forward).unwrap();
            let fs = engine.execute(&shifted, Direction::Forward).unwrap();
            let want: Vec<C64> = fx
                .iter()
                .enumerate()
                .map(|(k, &v)| v * twiddle(n, k * shift % n).conj())
                .collect();
            let peak = want.iter().map(|c| c.abs()).fold(0.0, f64::max).max(1.0);
            let err = max_error(&fs, &want) / peak;
            prop_assert!(
                err < 4.0 * engine.tolerance(),
                "{} shift duality at n={} s={}: {}", engine.name(), n, shift, err
            );
        }
    }

    #[test]
    fn supports_matches_planability_on_random_sizes(n in 0usize..4096) {
        // The registry's support claim and its constructor must agree
        // at any size a property draw can produce — including far
        // beyond the exhaustive sweep below.
        prop_assert_eq!(EngineRegistry::supports(n), EngineRegistry::standard(n).is_ok());
    }

    #[test]
    fn time_shift_multiplies_spectrum_by_twiddle(shift in 1usize..63, seed in 0u64..20) {
        let n = 64usize;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x: Vec<Complex<f64>> = (0..n)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let shifted: Vec<Complex<f64>> = (0..n).map(|m| x[(m + shift) % n]).collect();
        let fft: ArrayFft<f64> = ArrayFft::new(n).expect("plan");
        let fx = fft.process(&x, Direction::Forward).expect("fft");
        let fs = fft.process(&shifted, Direction::Forward).expect("fft");
        for k in 0..n {
            // x(m + s) <-> X(k) * W^{-ks}
            let want = fx[k] * twiddle(n, (k * shift) % n).conj();
            prop_assert!(fs[k].dist(want) < 1e-8, "k={k}");
        }
    }
}

/// The any-N guarantee, exhaustively: `supports(n)` is true and the
/// standard registry builds for **every** `n` in `2..=2048` — no prime,
/// no rough composite, no adversarial factorisation falls through. The
/// degenerate sizes 0 and 1 are the only rejections.
#[test]
fn every_size_up_to_2048_is_supported_and_plans() {
    assert!(!EngineRegistry::supports(0));
    assert!(!EngineRegistry::supports(1));
    assert!(EngineRegistry::standard(0).is_err());
    assert!(EngineRegistry::standard(1).is_err());
    for n in 2..=2048usize {
        assert!(EngineRegistry::supports(n), "supports({n}) must hold");
        let registry =
            EngineRegistry::standard(n).unwrap_or_else(|e| panic!("standard({n}) must plan: {e}"));
        // Every registry carries the naive reference and the universal
        // chirp-Z fallback; nothing is ever near-empty.
        assert!(registry.get("dft_naive").is_some(), "n={n}");
        assert!(registry.get("bluestein").is_some(), "n={n}");
    }
}
