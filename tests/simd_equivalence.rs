//! Satellite: the SIMD tier is a pure throughput change. Every `*_simd`
//! engine the registry registers must match its scalar sibling —
//! `radix4_simd` vs `radix4_dit`, `split_radix_simd` vs `split_radix` —
//! across registry sizes and both directions, far inside the engines'
//! declared tolerance. On hosts without a vector unit the registry
//! carries no `*_simd` engines and the sibling sweep is vacuous; the
//! presence test pins that the tier appears exactly when detection says
//! it should.

use afft::core::engine::EngineRegistry;
use afft::core::reference::max_error;
use afft::core::{simd, Direction};
use afft::num::{Complex, C64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The scalar engine each SIMD engine must reproduce.
fn scalar_sibling(simd_name: &str) -> &'static str {
    match simd_name {
        "radix4_simd" => "radix4_dit",
        "split_radix_simd" => "split_radix",
        other => panic!("no scalar sibling mapped for {other}"),
    }
}

fn random_signal(n: usize, seed: u64) -> Vec<C64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
}

#[test]
fn every_simd_engine_matches_its_scalar_sibling() {
    for n in [16usize, 32, 64, 128, 256, 512, 1024] {
        let mut registry = EngineRegistry::standard(n).expect("registry");
        let simd_names: Vec<String> = registry
            .names()
            .iter()
            .filter(|name| name.ends_with("_simd"))
            .map(|name| name.to_string())
            .collect();
        if simd::active_level().is_simd() {
            assert!(
                simd_names.contains(&"split_radix_simd".to_string()),
                "SIMD detected but split_radix_simd missing at n={n}"
            );
        } else {
            assert!(simd_names.is_empty(), "no SIMD detected but {simd_names:?} at n={n}");
        }
        let x = random_signal(n, 97 + n as u64);
        let mut got = vec![Complex::zero(); n];
        let mut want = vec![Complex::zero(); n];
        for name in simd_names {
            let mut vector = registry.take(&name).expect("simd engine");
            let mut scalar = registry.take(scalar_sibling(&name)).expect("scalar sibling");
            for dir in [Direction::Forward, Direction::Inverse] {
                vector.execute_into(&x, &mut got, dir).expect("simd execute");
                scalar.execute_into(&x, &mut want, dir).expect("scalar execute");
                let peak = want.iter().map(|c| c.abs()).fold(f64::MIN_POSITIVE, f64::max);
                let err = max_error(&got, &want) / peak;
                // Same sign algebra, different summation order: the
                // backends may differ only by FMA rounding, orders of
                // magnitude inside the 1e-8 engine tolerance.
                assert!(err < 1e-12, "{name} vs scalar sibling at n={n} ({dir:?}): {err}");
            }
            registry.register(vector);
            registry.register(scalar);
        }
    }
}
