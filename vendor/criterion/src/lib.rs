//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to the crates.io registry, so the
//! workspace vendors the subset of the criterion API its benches use:
//! [`Criterion`], [`BenchmarkId`], benchmark groups, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of statistical sampling, each benchmark runs its routine for
//! a small fixed warm-up plus a timed batch and prints the mean
//! wall-clock time per iteration. That keeps `cargo bench` useful for
//! relative comparisons while staying fast and dependency-free. Set
//! `CRITERION_ITERS` to change the timed iteration count (default 10).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

fn timed_iters() -> u64 {
    std::env::var("CRITERION_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(10).max(1)
}

/// Runs one benchmark routine and reports its timing.
pub struct Bencher {
    iters: u64,
}

impl Bencher {
    /// Times `routine`, printing mean wall-clock time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up iteration outside the timed window.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        let per_iter = start.elapsed().as_secs_f64() / self.iters as f64;
        println!("    time: {:>12} per iter ({} iters)", format_seconds(per_iter), self.iters);
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Identifier for one parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        println!("bench: {name}");
        f(&mut Bencher { iters: timed_iters() });
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { _criterion: self }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the vendored runner uses a fixed
    /// iteration count instead of statistical sampling.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        println!("  bench: {name}");
        f(&mut Bencher { iters: timed_iters() });
        self
    }

    /// Runs a parameterised benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("  bench: {id}");
        f(&mut Bencher { iters: timed_iters() }, input);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Bundles bench functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` passes harness flags; ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_routine() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("counter", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut hits = 0;
        g.sample_size(10)
            .bench_with_input(BenchmarkId::from_parameter(64), &64, |b, &n| b.iter(|| hits += n));
        g.finish();
        assert!(hits >= 64);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::from_parameter(1024).to_string(), "1024");
        assert_eq!(BenchmarkId::new("fft", 64).to_string(), "fft/64");
    }
}
