//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to the crates.io registry, so this
//! workspace vendors the slice of the proptest API its property tests
//! use: the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//! [`arbitrary::any`],
//! range and tuple strategies, [`collection::vec`], `Just`,
//! `prop_oneof!`, and the `proptest!` / `prop_assert*!` / `prop_assume!`
//! macros.
//!
//! Semantics differ from real proptest in two deliberate ways: cases are
//! drawn from a deterministic per-test RNG (no persisted failure seeds),
//! and there is no shrinking — a failing case reports its index and
//! message only. Case counts honour `ProptestConfig::with_cases` and the
//! `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! Test execution: configuration and the deterministic RNG.

    /// Configuration for one `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// Effective case count: the `PROPTEST_CASES` environment
        /// variable overrides the configured value when set.
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(self.cases)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 value source for strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name (FNV-1a hash).
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `0..span` (`span > 0`).
        pub fn below(&mut self, span: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<W, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> W,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, W, F: Fn(S::Value) -> W> Strategy for Map<S, F> {
        type Value = W;
        fn generate(&self, rng: &mut TestRng) -> W {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Boxes a strategy for use in heterogeneous unions.
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Builds a union over `arms` (must be non-empty).
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let k = rng.below(self.arms.len() as u64) as usize;
            self.arms[k].generate(rng)
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy range is empty");
                    let span = hi.wrapping_sub(lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }
    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_strategy_float {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    impl_range_strategy_float!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! `any::<T>()`: full-domain strategies per type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Length specifications accepted by [`vec()`].
    pub trait IntoSizeRange {
        /// Returns the inclusive `(min, max)` length bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "vec strategy: empty length range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Generates vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror of `proptest::prop` (e.g. `prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    //! The glob-import surface used by tests.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Skips the current case unless `cond` holds (counts as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes
/// a `#[test]` that runs the body over `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    { ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )* } => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let cases = config.effective_cases();
                for case in 0..cases {
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )*
                    let outcome: ::core::result::Result<(), ::std::string::String> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(msg) = outcome {
                        panic!("proptest {} failed at case {}/{}:\n{}", stringify!($name), case + 1, cases, msg);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn even() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..7, y in -0.5f64..0.5) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((-0.5..0.5).contains(&y));
        }

        #[test]
        fn map_and_oneof(e in even(), pick in prop_oneof![Just(1u32), Just(2u32), 10u32..12]) {
            prop_assert_eq!(e % 2, 0);
            prop_assert!(pick == 1 || pick == 2 || pick == 10 || pick == 11);
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(any::<i16>(), 1..40)) {
            prop_assert!(!v.is_empty() && v.len() < 40);
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x != 5);
            prop_assert!(x != 5);
        }
    }
}
