//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to the crates.io registry, so this
//! workspace vendors the small slice of the `rand 0.8` API its tests,
//! examples and workload generators actually use: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`] and [`seq::SliceRandom::shuffle`].
//!
//! The generator is SplitMix64 — deterministic per seed, statistically
//! solid for test workloads, and dependency-free. It is **not** a
//! cryptographic RNG and makes no cross-version stream-stability
//! promises beyond this workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level entropy source: a 64-bit generator step.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Types that [`Rng::gen`] can produce with a uniform "standard"
/// distribution (full range for integers, `[0, 1)` for floats, fair
/// coin for `bool`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded draw: uniform in `0..span` (span > 0).
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value with the standard distribution for its type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{bounded, RngCore};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher-Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n: u32 = rng.gen_range(90u32..165);
            assert!((90..165).contains(&n));
            let i: i32 = rng.gen_range(-32768i32..=32767);
            assert!((-32768..=32767).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted (astronomically unlikely)");
    }
}
